#include "common/dominance.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DEPMINER_DOMINANCE_HAS_AVX2 1
#else
#define DEPMINER_DOMINANCE_HAS_AVX2 0
#endif

#include "common/trace.h"

namespace depminer {

namespace {

uint64_t TailMask(size_t prefix) {
  return (prefix % 64 == 0) ? ~uint64_t{0}
                            : ((uint64_t{1} << (prefix % 64)) - 1);
}

// ---------------------------------------------------------------------------
// Batched bitmap primitives, one set per backend.
//
// The kernel's two hot loops are (a) intersecting a posting row into a
// survivor bitmap (`dst &= row`, resp. `dst &= ~row`) while OR-folding the
// result so callers can short-circuit once no survivor remains, and (b)
// testing one candidate's AttributeSet words against a structure-of-arrays
// family of already-kept survivors (the small-family scan). Both are pure
// word-parallel bit algebra, so each has a portable 64-bit implementation
// (the oracle) and an AVX2 one processing four id-bitmap words — or four
// survivors — per instruction. Backends are observationally identical:
// they compute the same booleans, so every caller's output is bit-identical
// regardless of dispatch.

uint64_t AndIntoScalar(uint64_t* dst, const uint64_t* src, size_t nw) {
  uint64_t any = 0;
  size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    any |= (dst[w] &= src[w]);
    any |= (dst[w + 1] &= src[w + 1]);
    any |= (dst[w + 2] &= src[w + 2]);
    any |= (dst[w + 3] &= src[w + 3]);
  }
  for (; w < nw; ++w) any |= (dst[w] &= src[w]);
  return any;
}

uint64_t AndNotIntoScalar(uint64_t* dst, const uint64_t* src, size_t nw) {
  uint64_t any = 0;
  size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    any |= (dst[w] &= ~src[w]);
    any |= (dst[w + 1] &= ~src[w + 1]);
    any |= (dst[w + 2] &= ~src[w + 2]);
    any |= (dst[w + 3] &= ~src[w + 3]);
  }
  for (; w < nw; ++w) any |= (dst[w] &= ~src[w]);
  return any;
}

/// True iff some kept set (SoA words k0/k1) is a superset of (s0, s1).
bool AnySupersetScalar(uint64_t s0, uint64_t s1, const uint64_t* k0,
                       const uint64_t* k1, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (((s0 & ~k0[i]) | (s1 & ~k1[i])) == 0) return true;
  }
  return false;
}

/// True iff some kept set (SoA words k0/k1) is a subset of (s0, s1).
bool AnySubsetScalar(uint64_t s0, uint64_t s1, const uint64_t* k0,
                     const uint64_t* k1, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (((k0[i] & ~s0) | (k1[i] & ~s1)) == 0) return true;
  }
  return false;
}

#if DEPMINER_DOMINANCE_HAS_AVX2

__attribute__((target("avx2"))) uint64_t AndIntoAvx2(uint64_t* dst,
                                                     const uint64_t* src,
                                                     size_t nw) {
  __m256i any = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i d = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), d);
    any = _mm256_or_si256(any, d);
  }
  uint64_t fold = _mm256_testz_si256(any, any) ? 0 : 1;
  for (; w < nw; ++w) fold |= (dst[w] &= src[w]);
  return fold;
}

__attribute__((target("avx2"))) uint64_t AndNotIntoAvx2(uint64_t* dst,
                                                        const uint64_t* src,
                                                        size_t nw) {
  __m256i any = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    // _mm256_andnot_si256(a, b) = ~a & b.
    const __m256i d = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), d);
    any = _mm256_or_si256(any, d);
  }
  uint64_t fold = _mm256_testz_si256(any, any) ? 0 : 1;
  for (; w < nw; ++w) fold |= (dst[w] &= ~src[w]);
  return fold;
}

__attribute__((target("avx2"))) bool AnySupersetAvx2(uint64_t s0, uint64_t s1,
                                                     const uint64_t* k0,
                                                     const uint64_t* k1,
                                                     size_t n) {
  const __m256i vs0 = _mm256_set1_epi64x(static_cast<long long>(s0));
  const __m256i vs1 = _mm256_set1_epi64x(static_cast<long long>(s1));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // s \ kept, per 64-bit lane over four kept sets at once; an all-zero
    // lane in both words means that kept set contains every bit of s.
    const __m256i miss = _mm256_or_si256(
        _mm256_andnot_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k0 + i)), vs0),
        _mm256_andnot_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k1 + i)), vs1));
    const __m256i hit = _mm256_cmpeq_epi64(miss, zero);
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  return AnySupersetScalar(s0, s1, k0 + i, k1 + i, n - i);
}

__attribute__((target("avx2"))) bool AnySubsetAvx2(uint64_t s0, uint64_t s1,
                                                   const uint64_t* k0,
                                                   const uint64_t* k1,
                                                   size_t n) {
  const __m256i vs0 = _mm256_set1_epi64x(static_cast<long long>(s0));
  const __m256i vs1 = _mm256_set1_epi64x(static_cast<long long>(s1));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i miss = _mm256_or_si256(
        _mm256_andnot_si256(
            vs0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k0 + i))),
        _mm256_andnot_si256(
            vs1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k1 + i))));
    const __m256i hit = _mm256_cmpeq_epi64(miss, zero);
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  return AnySubsetScalar(s0, s1, k0 + i, k1 + i, n - i);
}

#endif  // DEPMINER_DOMINANCE_HAS_AVX2

/// The dispatch table one backend resolves to.
struct BackendOps {
  uint64_t (*and_into)(uint64_t*, const uint64_t*, size_t);
  uint64_t (*andnot_into)(uint64_t*, const uint64_t*, size_t);
  bool (*any_superset)(uint64_t, uint64_t, const uint64_t*, const uint64_t*,
                       size_t);
  bool (*any_subset)(uint64_t, uint64_t, const uint64_t*, const uint64_t*,
                     size_t);
};

constexpr BackendOps kScalarOps = {AndIntoScalar, AndNotIntoScalar,
                                   AnySupersetScalar, AnySubsetScalar};
#if DEPMINER_DOMINANCE_HAS_AVX2
constexpr BackendOps kAvx2Ops = {AndIntoAvx2, AndNotIntoAvx2, AnySupersetAvx2,
                                 AnySubsetAvx2};
#endif

const BackendOps& OpsFor(DominanceBackend backend) {
#if DEPMINER_DOMINANCE_HAS_AVX2
  if (backend == DominanceBackend::kAvx2) return kAvx2Ops;
#else
  (void)backend;
#endif
  return kScalarOps;
}

/// The active backend, resolved once from CPUID at first use. Stored as
/// int (backend value, or -1 for "not yet resolved") so the resolve is a
/// single relaxed CAS race every thread settles identically.
std::atomic<int> g_backend{-1};

DominanceBackend ResolveDefaultBackend() {
  return DominanceBackendSupported(DominanceBackend::kAvx2)
             ? DominanceBackend::kAvx2
             : DominanceBackend::kScalar;
}

}  // namespace

bool DominanceBackendSupported(DominanceBackend backend) {
  switch (backend) {
    case DominanceBackend::kScalar:
      return true;
    case DominanceBackend::kAvx2:
#if DEPMINER_DOMINANCE_HAS_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

DominanceBackend ActiveDominanceBackend() {
  int current = g_backend.load(std::memory_order_relaxed);
  if (current < 0) {
    const DominanceBackend resolved = ResolveDefaultBackend();
    int expected = -1;
    g_backend.compare_exchange_strong(expected, static_cast<int>(resolved),
                                      std::memory_order_relaxed);
    current = g_backend.load(std::memory_order_relaxed);
  }
  return static_cast<DominanceBackend>(current);
}

DominanceBackend SetDominanceBackend(DominanceBackend backend) {
  if (!DominanceBackendSupported(backend)) {
    backend = DominanceBackend::kScalar;
  }
  const DominanceBackend previous = ActiveDominanceBackend();
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
  return previous;
}

const char* ToString(DominanceBackend backend) {
  switch (backend) {
    case DominanceBackend::kScalar:
      return "scalar";
    case DominanceBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

DominanceIndex::DominanceIndex(const std::vector<AttributeSet>& family,
                               Order order, size_t num_attributes)
    : num_sets_(family.size()),
      words_((family.size() + 63) / 64),
      order_(order) {
  size_t hist[AttributeSet::kMaxAttributes + 1] = {};
  for (const AttributeSet& s : family) {
    support_ = support_.Union(s);
    ++hist[s.Count()];
  }
  rows_ = num_attributes;
  if (!support_.Empty()) {
    rows_ = std::max(rows_, static_cast<size_t>(support_.Max()) + 1);
  }
  postings_.assign(rows_ * words_, 0);
  for (size_t id = 0; id < num_sets_; ++id) {
#ifndef NDEBUG
    if (id > 0) {
      const size_t prev = family[id - 1].Count(), cur = family[id].Count();
      assert((order == Order::kNonIncreasing ? prev >= cur : prev <= cur) &&
             "family must be sorted by the declared cardinality order");
    }
#endif
    const uint64_t bit = uint64_t{1} << (id % 64);
    const size_t word = id / 64;
    family[id].ForEach([&](AttributeId a) {
      postings_[static_cast<size_t>(a) * words_ + word] |= bit;
    });
  }
  // Strict-cardinality prefix boundaries: ids able to properly dominate
  // a set of cardinality c are exactly those sorted before every set of
  // cardinality c.
  if (order == Order::kNonIncreasing) {
    size_t acc = 0;
    for (size_t c = AttributeSet::kMaxAttributes + 1; c-- > 0;) {
      strict_prefix_[c] = acc;
      acc += hist[c];
    }
  } else {
    size_t acc = 0;
    for (size_t c = 0; c <= AttributeSet::kMaxAttributes; ++c) {
      strict_prefix_[c] = acc;
      acc += hist[c];
    }
  }
}

bool DominanceIndex::HasProperSupersetOf(const AttributeSet& s,
                                         const uint64_t* exclude,
                                         uint64_t* scratch) const {
  assert(order_ == Order::kNonIncreasing);
  const size_t prefix = strict_prefix_[s.Count()];
  if (prefix == 0) return false;
  const size_t nw = (prefix + 63) / 64;
  const BackendOps& ops = OpsFor(ActiveDominanceBackend());
  // Start from every strictly-larger id (minus exclusions); each member
  // posting intersected shrinks the survivors to the sets containing all
  // of s. The running OR short-circuits the common case where a few
  // postings already prove no superset exists.
  for (size_t w = 0; w < nw; ++w) {
    scratch[w] = exclude != nullptr ? ~exclude[w] : ~uint64_t{0};
  }
  scratch[nw - 1] &= TailMask(prefix);
  uint64_t any = 0;
  for (size_t w = 0; w < nw; ++w) any |= scratch[w];
  for (size_t sw = 0; sw < AttributeSet::kWords && any != 0; ++sw) {
    uint64_t bits = s.word(sw);
    while (bits != 0 && any != 0) {
      const AttributeId a =
          static_cast<AttributeId>(sw * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      any = ops.and_into(scratch, Postings(a), nw);
    }
  }
  return any != 0;
}

bool DominanceIndex::HasProperSubsetOf(const AttributeSet& s,
                                       const uint64_t* exclude,
                                       uint64_t* scratch) const {
  assert(order_ == Order::kNonDecreasing);
  const size_t prefix = strict_prefix_[s.Count()];
  if (prefix == 0) return false;
  const size_t nw = (prefix + 63) / 64;
  const BackendOps& ops = OpsFor(ActiveDominanceBackend());
  // Start from every strictly-smaller id; knocking out the postings of
  // each attribute *outside* s leaves exactly the sets avoiding
  // everything outside s — the subsets of s. Attributes no indexed set
  // carries (outside the support) cannot knock anything out and are
  // skipped wholesale.
  for (size_t w = 0; w < nw; ++w) {
    scratch[w] = exclude != nullptr ? ~exclude[w] : ~uint64_t{0};
  }
  scratch[nw - 1] &= TailMask(prefix);
  uint64_t any = 0;
  for (size_t w = 0; w < nw; ++w) any |= scratch[w];
  const AttributeSet outside = support_.Minus(s);
  for (size_t sw = 0; sw < AttributeSet::kWords && any != 0; ++sw) {
    uint64_t bits = outside.word(sw);
    while (bits != 0 && any != 0) {
      const AttributeId a =
          static_cast<AttributeId>(sw * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      any = ops.andnot_into(scratch, Postings(a), nw);
    }
  }
  return any != 0;
}

namespace {

/// Canonical dominance preprocessing: deduplicate (word order), then
/// order by cardinality — dominating sets first — stably, so the
/// survivor sequence is a deterministic function of the input *as a
/// set*. This is the exact ordering the pre-kernel quadratic filters
/// used; keeping it keeps every caller's output bit-identical.
void CanonicalOrder(std::vector<AttributeSet>* sets, bool largest_first) {
  std::sort(sets->begin(), sets->end());
  sets->erase(std::unique(sets->begin(), sets->end()), sets->end());
  std::stable_sort(sets->begin(), sets->end(),
                   [largest_first](const AttributeSet& a,
                                   const AttributeSet& b) {
                     return largest_first ? a.Count() > b.Count()
                                          : a.Count() < b.Count();
                   });
}

/// The incremental quadratic survivor scan over a canonically ordered
/// family. A candidate only needs checking against already-kept sets:
/// dominance is transitive and dominators sort earlier, so every
/// dominated candidate is dominated by some survivor.
std::vector<AttributeSet> SurvivorScan(const std::vector<AttributeSet>& sets,
                                       bool maximal) {
  std::vector<AttributeSet> out;
  out.reserve(sets.size());
  for (const AttributeSet& s : sets) {
    bool dominated = false;
    for (const AttributeSet& kept : out) {
      if (maximal ? s.IsSubsetOf(kept) : kept.IsSubsetOf(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(s);
  }
  return out;
}

/// The batched small-family path: the same incremental survivor scan, but
/// with the kept sets held as structure-of-arrays word columns so one
/// candidate is tested against four survivors per step (AVX2) or with
/// branch-free word algebra (scalar). Output is identical to
/// `SurvivorScan` — same candidates kept in the same order.
std::vector<AttributeSet> SurvivorScanBatched(
    const std::vector<AttributeSet>& sets, bool maximal) {
  const BackendOps& ops = OpsFor(ActiveDominanceBackend());
  std::vector<AttributeSet> out;
  out.reserve(sets.size());
  std::vector<uint64_t> k0, k1;
  k0.reserve(sets.size());
  k1.reserve(sets.size());
  for (const AttributeSet& s : sets) {
    const bool dominated =
        maximal ? ops.any_superset(s.word(0), s.word(1), k0.data(), k1.data(),
                                   k0.size())
                : ops.any_subset(s.word(0), s.word(1), k0.data(), k1.data(),
                                 k0.size());
    if (!dominated) {
      out.push_back(s);
      k0.push_back(s.word(0));
      k1.push_back(s.word(1));
    }
  }
  return out;
}

/// Families smaller than this are filtered by the batched survivor scan;
/// larger ones build the inverted posting index. Measured crossover, not
/// a guess: on the baseline box (see docs/PERFORMANCE.md and
/// BENCH_cmax_dominance.json) the batched scan beats the index up to
/// ~1k sets — index construction costs ~|S| posting writes plus the
/// bitmap allocation, and its queries only amortize once |S|·|survivors|
/// word ops dominate. The pre-batching cutoff of 64 made the kernel
/// *lose* to the plain scan at 64–256 sets (0.52x–0.89x); re-measure with
/// `scripts/bench_cmax.sh` when touching either path.
constexpr size_t kIndexCutoff = 1024;

std::vector<AttributeSet> FilterDominated(std::vector<AttributeSet> sets,
                                          bool maximal) {
  CanonicalOrder(&sets, /*largest_first=*/maximal);
  // Family-size distribution, split by which kernel served it — the
  // histogram shows whether the cutoff sits where real workloads cluster.
  DEPMINER_TRACE_HISTOGRAM(sets.size() < kIndexCutoff
                               ? "dominance_family_size/scan"
                               : "dominance_family_size/indexed",
                           sets.size());
  if (sets.size() < kIndexCutoff) return SurvivorScanBatched(sets, maximal);
  DEPMINER_TRACE_COUNTER("dominance.index_queries", sets.size());
  const DominanceIndex index(sets, maximal
                                       ? DominanceIndex::Order::kNonIncreasing
                                       : DominanceIndex::Order::kNonDecreasing);
  // Checking against the *whole* family instead of the survivor set is
  // equivalent: any dominator is itself dominated only by sets that also
  // dominate the candidate (transitivity), so a maximal/minimal
  // dominator always exists among the survivors.
  std::vector<uint64_t> scratch(index.words_per_bitmap());
  std::vector<AttributeSet> out;
  out.reserve(sets.size());
  for (const AttributeSet& s : sets) {
    const bool dominated =
        maximal ? index.HasProperSupersetOf(s, nullptr, scratch.data())
                : index.HasProperSubsetOf(s, nullptr, scratch.data());
    if (!dominated) out.push_back(s);
  }
  return out;
}

}  // namespace

// MaximalSets / MinimalSets are declared in attribute_set.h (they predate
// the kernel); their bodies live here so every caller — FastFDs
// difference-set minimization, FDep hypothesis pruning,
// Hypergraph::Minimized, Berge transversals, normalization — routes
// through the same dominance machinery.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  return FilterDominated(std::move(sets), /*maximal=*/true);
}

std::vector<AttributeSet> MinimalSets(std::vector<AttributeSet> sets) {
  return FilterDominated(std::move(sets), /*maximal=*/false);
}

std::vector<AttributeSet> MaximalSetsNaive(std::vector<AttributeSet> sets) {
  CanonicalOrder(&sets, /*largest_first=*/true);
  return SurvivorScan(sets, /*maximal=*/true);
}

std::vector<AttributeSet> MinimalSetsNaive(std::vector<AttributeSet> sets) {
  CanonicalOrder(&sets, /*largest_first=*/false);
  return SurvivorScan(sets, /*maximal=*/false);
}

}  // namespace depminer
