#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "report/json_writer.h"

namespace depminer {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The active session and a generation stamp. Threads cache a pointer to
/// their per-session buffer in a thread_local; the generation check
/// invalidates that cache when a session stops or a new one starts, so a
/// stale pointer from a previous session is never dereferenced.
std::atomic<TraceSession*> g_current{nullptr};
std::atomic<uint64_t> g_generation{0};

}  // namespace

size_t TraceHistogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // bit_width(v) = floor(log2 v) + 1, so values in [2^(i-1), 2^i - 1]
  // land in bucket i; everything at or above 2^(kBuckets-2) overflows
  // into the last (+Inf) bucket.
  return std::min<size_t>(std::bit_width(value), kBuckets - 1);
}

uint64_t TraceHistogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return UINT64_MAX;  // +Inf overflow bucket
  return (uint64_t{1} << i) - 1;
}

void TraceHistogram::MergeFrom(const TraceHistogram& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

namespace trace_internal {

/// One thread's slice of a session. Appends take `mu` — uncontended on
/// the hot path (only the owner appends; the merge at `Stop()` is the one
/// cross-thread reader, and it runs after instrumented work has joined).
/// `depth` is owner-only state (touched exclusively by the owning thread
/// between Span open/close), so it lives outside the mutex.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, TraceHistogram> histograms;
  std::vector<TraceSampleEvent> samples;
  int64_t session_start_ns = 0;  // rebase spans to session-relative time
  uint32_t tid = 0;
  uint32_t depth = 0;  // owner-only; not guarded
};

}  // namespace trace_internal

using trace_internal::ThreadBuffer;

struct TraceSession::Impl {
  std::mutex mu;  // guards `buffers` registration and merged state
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  bool active = false;
  int64_t start_ns = 0;
  double wall_seconds = 0.0;

  // Merged at Stop().
  std::vector<TraceEvent> events;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, TraceHistogram> histograms;
  std::vector<TraceSampleEvent> samples;

  ThreadBuffer* RegisterThread() {
    std::lock_guard<std::mutex> lock(mu);
    if (!active) return nullptr;
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<uint32_t>(buffers.size());
    buf->session_start_ns = start_ns;
    buffers.push_back(std::move(buf));
    return buffers.back().get();
  }
};

namespace trace_internal {

ThreadBuffer* CurrentBuffer() {
  // Per-thread cache: {generation, buffer}. A mismatch with the global
  // generation means the cached buffer belongs to a dead (or different)
  // session and must be re-resolved.
  thread_local uint64_t t_generation = 0;
  thread_local ThreadBuffer* t_buffer = nullptr;

  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_generation == gen) return t_buffer;

  TraceSession* session = g_current.load(std::memory_order_acquire);
  t_buffer = session != nullptr ? session->impl_->RegisterThread() : nullptr;
  t_generation = gen;
  return t_buffer;
}

}  // namespace trace_internal

TraceSession::TraceSession() : impl_(std::make_unique<Impl>()) {}

TraceSession::~TraceSession() {
  Stop();
}

void TraceSession::Start() {
#if DEPMINER_TRACING_ENABLED
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->buffers.clear();
  impl_->events.clear();
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->histograms.clear();
  impl_->samples.clear();
  impl_->wall_seconds = 0.0;
  impl_->start_ns = NowNs();
  impl_->active = true;
  g_current.store(this, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
#endif
}

void TraceSession::Stop() {
  if (!impl_->active) return;
  // Uninstall first so instrumentation sites stop resolving buffers, then
  // merge. Per the class contract, no instrumented work races this.
  g_current.store(nullptr, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);

  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->active = false;
  impl_->wall_seconds = static_cast<double>(NowNs() - impl_->start_ns) * 1e-9;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    impl_->events.insert(impl_->events.end(), buf->events.begin(),
                         buf->events.end());
    for (const auto& [name, v] : buf->counters) impl_->counters[name] += v;
    for (const auto& [name, v] : buf->gauges) {
      uint64_t& g = impl_->gauges[name];
      g = std::max(g, v);
    }
    // Fixed-boundary elementwise add: the merged histogram is identical
    // no matter how observations were distributed over threads.
    for (const auto& [name, h] : buf->histograms) {
      impl_->histograms[name].MergeFrom(h);
    }
    impl_->samples.insert(impl_->samples.end(), buf->samples.begin(),
                          buf->samples.end());
  }
  std::stable_sort(impl_->samples.begin(), impl_->samples.end(),
                   [](const TraceSampleEvent& a, const TraceSampleEvent& b) {
                     if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
                     return a.series < b.series;
                   });
  std::stable_sort(impl_->events.begin(), impl_->events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.depth < b.depth;
                   });
  // Buffers stay alive until the next Start() (or destruction): a thread
  // that cached a pointer but has not yet noticed the generation bump
  // must not be left holding freed memory.
}

TraceSession* TraceSession::Current() {
  return g_current.load(std::memory_order_acquire);
}

bool TraceSession::active() const { return impl_->active; }

const std::vector<TraceEvent>& TraceSession::events() const {
  return impl_->events;
}
const std::map<std::string, uint64_t>& TraceSession::counters() const {
  return impl_->counters;
}
const std::map<std::string, uint64_t>& TraceSession::gauges() const {
  return impl_->gauges;
}
const std::map<std::string, TraceHistogram>& TraceSession::histograms() const {
  return impl_->histograms;
}
const std::vector<TraceSampleEvent>& TraceSession::samples() const {
  return impl_->samples;
}
double TraceSession::wall_seconds() const { return impl_->wall_seconds; }

Status TraceSession::WriteChromeTrace(const std::string& path) const {
  JsonWriter w;
  w.OpenObject();
  w.Key("traceEvents").OpenArray();
  for (const TraceEvent& e : impl_->events) {
    w.OpenObject();
    w.Key("name").Value(e.name);
    w.Key("ph").Value("X");  // complete event: ts + dur in one record
    w.Key("ts").Value(static_cast<double>(e.start_ns) * 1e-3);
    w.Key("dur").Value(static_cast<double>(e.dur_ns) * 1e-3);
    w.Key("pid").Value(static_cast<int64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(e.tid));
    if (e.has_arg) {
      w.Key("args").OpenObject();
      w.Key("value").Value(e.arg);
      w.CloseObject();
    }
    w.CloseObject();
  }
  // Sampled time series as counter events: Perfetto renders each series
  // as its own numeric track above the spans.
  for (const TraceSampleEvent& s : impl_->samples) {
    w.OpenObject();
    w.Key("name").Value(s.series);
    w.Key("ph").Value("C");
    w.Key("ts").Value(static_cast<double>(s.t_ns) * 1e-3);
    w.Key("pid").Value(static_cast<int64_t>(1));
    w.Key("args").OpenObject();
    w.Key("value").Value(s.value);
    w.CloseObject();
    w.CloseObject();
  }
  w.CloseArray();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("metrics").OpenObject();
  w.Key("wall_seconds").Value(impl_->wall_seconds);
  w.Key("counters").OpenObject();
  for (const auto& [name, v] : impl_->counters) w.Key(name).Value(v);
  w.CloseObject();
  w.Key("gauges").OpenObject();
  for (const auto& [name, v] : impl_->gauges) w.Key(name).Value(v);
  w.CloseObject();
  w.Key("histograms").OpenObject();
  for (const auto& [name, h] : impl_->histograms) {
    w.Key(name).OpenObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    // Only occupied buckets, as [upper_bound, count] pairs; the +Inf
    // bucket's bound is emitted as -1 (JSON has no Inf literal).
    w.Key("buckets").OpenArray();
    for (size_t i = 0; i < TraceHistogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      const uint64_t ub = TraceHistogram::BucketUpperBound(i);
      w.OpenArray();
      if (ub == UINT64_MAX) {
        w.Value(static_cast<int64_t>(-1));
      } else {
        w.Value(ub);
      }
      w.Value(h.buckets[i]);
      w.CloseArray();
    }
    w.CloseArray();
    w.CloseObject();
  }
  w.CloseObject();
  w.CloseObject();
  w.CloseObject();

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  const std::string& json = w.str();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

std::string TraceSession::MetricsSummary() const {
  // Aggregate spans by name: count, total self-thread duration. For the
  // `phase/*` spans — which are top-level and non-overlapping within a
  // run — the durations additionally tell what share of session wall
  // clock each pipeline phase took.
  struct Agg {
    uint64_t count = 0;
    int64_t total_ns = 0;
  };
  std::map<std::string, Agg> phases;
  std::map<std::string, Agg> others;
  for (const TraceEvent& e : impl_->events) {
    const std::string name(e.name);
    Agg& a = name.rfind("phase/", 0) == 0 ? phases[name] : others[name];
    a.count += 1;
    a.total_ns += e.dur_ns;
  }

  std::string out;
  char line[192];
  const double wall = impl_->wall_seconds;
  std::snprintf(line, sizeof(line), "wall clock           %10.3fs\n", wall);
  out += line;
  if (!phases.empty()) {
    out += "-- phases ------------------------------------\n";
    double phase_sum = 0.0;
    for (const auto& [name, a] : phases) {
      const double secs = static_cast<double>(a.total_ns) * 1e-9;
      phase_sum += secs;
      const double pct = wall > 0.0 ? 100.0 * secs / wall : 0.0;
      std::snprintf(line, sizeof(line), "%-20s %10.3fs %5.1f%%  n=%llu\n",
                    name.c_str(), secs, pct,
                    static_cast<unsigned long long>(a.count));
      out += line;
    }
    const double pct = wall > 0.0 ? 100.0 * phase_sum / wall : 0.0;
    std::snprintf(line, sizeof(line), "%-20s %10.3fs %5.1f%%\n",
                  "phases total", phase_sum, pct);
    out += line;
  }
  if (!others.empty()) {
    out += "-- spans -------------------------------------\n";
    for (const auto& [name, a] : others) {
      const double secs = static_cast<double>(a.total_ns) * 1e-9;
      std::snprintf(line, sizeof(line), "%-20s %10.3fs        n=%llu\n",
                    name.c_str(), secs,
                    static_cast<unsigned long long>(a.count));
      out += line;
    }
  }
  if (!impl_->counters.empty()) {
    out += "-- counters ----------------------------------\n";
    for (const auto& [name, v] : impl_->counters) {
      std::snprintf(line, sizeof(line), "%-28s %15llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }
  if (!impl_->gauges.empty()) {
    out += "-- gauges (max) ------------------------------\n";
    for (const auto& [name, v] : impl_->gauges) {
      std::snprintf(line, sizeof(line), "%-28s %15llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }
  if (!impl_->histograms.empty()) {
    out += "-- histograms --------------------------------\n";
    for (const auto& [name, h] : impl_->histograms) {
      const double mean =
          h.count > 0 ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                      : 0.0;
      // Approximate p99 from the bucket boundaries: the upper bound of
      // the first bucket whose cumulative count reaches 99%.
      uint64_t cum = 0;
      uint64_t p99 = 0;
      const uint64_t target =
          h.count - h.count / 100;  // ceil-ish 99th rank, exact enough here
      for (size_t i = 0; i < TraceHistogram::kBuckets; ++i) {
        cum += h.buckets[i];
        if (cum >= target && h.count > 0) {
          p99 = TraceHistogram::BucketUpperBound(i);
          break;
        }
      }
      std::snprintf(line, sizeof(line),
                    "%-28s n=%-10llu mean=%-12.1f p99<=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(h.count), mean,
                    static_cast<unsigned long long>(p99));
      out += line;
    }
  }
  return out;
}

Span::Span(const char* name) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  buffer_ = buf;
  name_ = name;
  depth_ = buf->depth++;
  start_ns_ = NowNs();  // absolute; rebased to session time at close
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  const int64_t end_ns = NowNs();
  buffer_->depth--;
  // Only record if the buffer still belongs to the active session: if the
  // session stopped while this span was open (contract violation, but be
  // safe) CurrentBuffer() re-resolves to null or a fresh buffer and the
  // span is dropped rather than written through a stale pointer.
  if (trace_internal::CurrentBuffer() != buffer_) return;
  TraceEvent e;
  e.name = name_;
  e.tid = buffer_->tid;
  e.depth = depth_;
  e.start_ns = start_ns_ - buffer_->session_start_ns;
  e.dur_ns = end_ns - start_ns_;
  e.arg = arg_;
  e.has_arg = has_arg_;
  std::lock_guard<std::mutex> lock(buffer_->mu);
  buffer_->events.push_back(e);
}

void TraceCounterAdd(const char* name, uint64_t delta) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->counters[name] += delta;
}

void TraceGaugeMax(const char* name, uint64_t value) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  uint64_t& g = buf->gauges[name];
  g = std::max(g, value);
}

void TraceHistogramRecord(const char* name, uint64_t value) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->histograms[name].Record(value);
}

void TraceHistogramRecord(const std::string& name, uint64_t value) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->histograms[name].Record(value);
}

void TraceSampleValue(const char* series, double value) {
  TraceSampleValue(std::string(series), value);
}

void TraceSampleValue(const std::string& series, double value) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  TraceSampleEvent s;
  s.series = series;
  s.t_ns = NowNs() - buf->session_start_ns;
  s.value = value;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->samples.push_back(std::move(s));
}

HistogramTimer::HistogramTimer(const char* name) : name_(name) {
  // Resolve activity once; the destructor re-checks the buffer so a
  // session stopping mid-scope drops the observation instead of writing
  // through a stale pointer (same discipline as Span).
  if (trace_internal::CurrentBuffer() == nullptr) return;
  active_ = true;
  start_ns_ = NowNs();
}

HistogramTimer::~HistogramTimer() {
  if (!active_) return;
  const int64_t elapsed = NowNs() - start_ns_;
  TraceHistogramRecord(name_, static_cast<uint64_t>(std::max<int64_t>(0, elapsed)));
}

PhaseTimer::PhaseTimer(const char* span_name, double* accumulate_seconds)
    : span_(span_name),
      span_name_(span_name),
      accumulate_seconds_(accumulate_seconds),
      start_ns_(NowNs()) {}

PhaseTimer::~PhaseTimer() { Stop(); }

void PhaseTimer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  const int64_t elapsed_ns = NowNs() - start_ns_;
  if (accumulate_seconds_ != nullptr) {
    *accumulate_seconds_ += static_cast<double>(elapsed_ns) * 1e-9;
  }
#if DEPMINER_TRACING_ENABLED
  if (trace_internal::CurrentBuffer() != nullptr) {
    // `phase/strip` → `phase_duration_ns/strip`: the exporters split the
    // name on '/' into family + label.
    const char* label = span_name_;
    if (std::strncmp(label, "phase/", 6) == 0) label += 6;
    TraceHistogramRecord(std::string("phase_duration_ns/") + label,
                         static_cast<uint64_t>(std::max<int64_t>(0, elapsed_ns)));
  }
#endif
}

}  // namespace depminer
