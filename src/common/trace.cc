#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "report/json_writer.h"

namespace depminer {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The active session and a generation stamp. Threads cache a pointer to
/// their per-session buffer in a thread_local; the generation check
/// invalidates that cache when a session stops or a new one starts, so a
/// stale pointer from a previous session is never dereferenced.
std::atomic<TraceSession*> g_current{nullptr};
std::atomic<uint64_t> g_generation{0};

}  // namespace

namespace trace_internal {

/// One thread's slice of a session. Appends take `mu` — uncontended on
/// the hot path (only the owner appends; the merge at `Stop()` is the one
/// cross-thread reader, and it runs after instrumented work has joined).
/// `depth` is owner-only state (touched exclusively by the owning thread
/// between Span open/close), so it lives outside the mutex.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  int64_t session_start_ns = 0;  // rebase spans to session-relative time
  uint32_t tid = 0;
  uint32_t depth = 0;  // owner-only; not guarded
};

}  // namespace trace_internal

using trace_internal::ThreadBuffer;

struct TraceSession::Impl {
  std::mutex mu;  // guards `buffers` registration and merged state
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  bool active = false;
  int64_t start_ns = 0;
  double wall_seconds = 0.0;

  // Merged at Stop().
  std::vector<TraceEvent> events;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;

  ThreadBuffer* RegisterThread() {
    std::lock_guard<std::mutex> lock(mu);
    if (!active) return nullptr;
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<uint32_t>(buffers.size());
    buf->session_start_ns = start_ns;
    buffers.push_back(std::move(buf));
    return buffers.back().get();
  }
};

namespace trace_internal {

ThreadBuffer* CurrentBuffer() {
  // Per-thread cache: {generation, buffer}. A mismatch with the global
  // generation means the cached buffer belongs to a dead (or different)
  // session and must be re-resolved.
  thread_local uint64_t t_generation = 0;
  thread_local ThreadBuffer* t_buffer = nullptr;

  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_generation == gen) return t_buffer;

  TraceSession* session = g_current.load(std::memory_order_acquire);
  t_buffer = session != nullptr ? session->impl_->RegisterThread() : nullptr;
  t_generation = gen;
  return t_buffer;
}

}  // namespace trace_internal

TraceSession::TraceSession() : impl_(std::make_unique<Impl>()) {}

TraceSession::~TraceSession() {
  Stop();
}

void TraceSession::Start() {
#if DEPMINER_TRACING_ENABLED
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->buffers.clear();
  impl_->events.clear();
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->wall_seconds = 0.0;
  impl_->start_ns = NowNs();
  impl_->active = true;
  g_current.store(this, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
#endif
}

void TraceSession::Stop() {
  if (!impl_->active) return;
  // Uninstall first so instrumentation sites stop resolving buffers, then
  // merge. Per the class contract, no instrumented work races this.
  g_current.store(nullptr, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);

  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->active = false;
  impl_->wall_seconds = static_cast<double>(NowNs() - impl_->start_ns) * 1e-9;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    impl_->events.insert(impl_->events.end(), buf->events.begin(),
                         buf->events.end());
    for (const auto& [name, v] : buf->counters) impl_->counters[name] += v;
    for (const auto& [name, v] : buf->gauges) {
      uint64_t& g = impl_->gauges[name];
      g = std::max(g, v);
    }
  }
  std::stable_sort(impl_->events.begin(), impl_->events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.depth < b.depth;
                   });
  // Buffers stay alive until the next Start() (or destruction): a thread
  // that cached a pointer but has not yet noticed the generation bump
  // must not be left holding freed memory.
}

TraceSession* TraceSession::Current() {
  return g_current.load(std::memory_order_acquire);
}

bool TraceSession::active() const { return impl_->active; }

const std::vector<TraceEvent>& TraceSession::events() const {
  return impl_->events;
}
const std::map<std::string, uint64_t>& TraceSession::counters() const {
  return impl_->counters;
}
const std::map<std::string, uint64_t>& TraceSession::gauges() const {
  return impl_->gauges;
}
double TraceSession::wall_seconds() const { return impl_->wall_seconds; }

Status TraceSession::WriteChromeTrace(const std::string& path) const {
  JsonWriter w;
  w.OpenObject();
  w.Key("traceEvents").OpenArray();
  for (const TraceEvent& e : impl_->events) {
    w.OpenObject();
    w.Key("name").Value(e.name);
    w.Key("ph").Value("X");  // complete event: ts + dur in one record
    w.Key("ts").Value(static_cast<double>(e.start_ns) * 1e-3);
    w.Key("dur").Value(static_cast<double>(e.dur_ns) * 1e-3);
    w.Key("pid").Value(static_cast<int64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(e.tid));
    if (e.has_arg) {
      w.Key("args").OpenObject();
      w.Key("value").Value(e.arg);
      w.CloseObject();
    }
    w.CloseObject();
  }
  w.CloseArray();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("metrics").OpenObject();
  w.Key("wall_seconds").Value(impl_->wall_seconds);
  w.Key("counters").OpenObject();
  for (const auto& [name, v] : impl_->counters) w.Key(name).Value(v);
  w.CloseObject();
  w.Key("gauges").OpenObject();
  for (const auto& [name, v] : impl_->gauges) w.Key(name).Value(v);
  w.CloseObject();
  w.CloseObject();
  w.CloseObject();

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  const std::string& json = w.str();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

std::string TraceSession::MetricsSummary() const {
  // Aggregate spans by name: count, total self-thread duration. For the
  // `phase/*` spans — which are top-level and non-overlapping within a
  // run — the durations additionally tell what share of session wall
  // clock each pipeline phase took.
  struct Agg {
    uint64_t count = 0;
    int64_t total_ns = 0;
  };
  std::map<std::string, Agg> phases;
  std::map<std::string, Agg> others;
  for (const TraceEvent& e : impl_->events) {
    const std::string name(e.name);
    Agg& a = name.rfind("phase/", 0) == 0 ? phases[name] : others[name];
    a.count += 1;
    a.total_ns += e.dur_ns;
  }

  std::string out;
  char line[192];
  const double wall = impl_->wall_seconds;
  std::snprintf(line, sizeof(line), "wall clock           %10.3fs\n", wall);
  out += line;
  if (!phases.empty()) {
    out += "-- phases ------------------------------------\n";
    double phase_sum = 0.0;
    for (const auto& [name, a] : phases) {
      const double secs = static_cast<double>(a.total_ns) * 1e-9;
      phase_sum += secs;
      const double pct = wall > 0.0 ? 100.0 * secs / wall : 0.0;
      std::snprintf(line, sizeof(line), "%-20s %10.3fs %5.1f%%  n=%llu\n",
                    name.c_str(), secs, pct,
                    static_cast<unsigned long long>(a.count));
      out += line;
    }
    const double pct = wall > 0.0 ? 100.0 * phase_sum / wall : 0.0;
    std::snprintf(line, sizeof(line), "%-20s %10.3fs %5.1f%%\n",
                  "phases total", phase_sum, pct);
    out += line;
  }
  if (!others.empty()) {
    out += "-- spans -------------------------------------\n";
    for (const auto& [name, a] : others) {
      const double secs = static_cast<double>(a.total_ns) * 1e-9;
      std::snprintf(line, sizeof(line), "%-20s %10.3fs        n=%llu\n",
                    name.c_str(), secs,
                    static_cast<unsigned long long>(a.count));
      out += line;
    }
  }
  if (!impl_->counters.empty()) {
    out += "-- counters ----------------------------------\n";
    for (const auto& [name, v] : impl_->counters) {
      std::snprintf(line, sizeof(line), "%-28s %15llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }
  if (!impl_->gauges.empty()) {
    out += "-- gauges (max) ------------------------------\n";
    for (const auto& [name, v] : impl_->gauges) {
      std::snprintf(line, sizeof(line), "%-28s %15llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }
  return out;
}

Span::Span(const char* name) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  buffer_ = buf;
  name_ = name;
  depth_ = buf->depth++;
  start_ns_ = NowNs();  // absolute; rebased to session time at close
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  const int64_t end_ns = NowNs();
  buffer_->depth--;
  // Only record if the buffer still belongs to the active session: if the
  // session stopped while this span was open (contract violation, but be
  // safe) CurrentBuffer() re-resolves to null or a fresh buffer and the
  // span is dropped rather than written through a stale pointer.
  if (trace_internal::CurrentBuffer() != buffer_) return;
  TraceEvent e;
  e.name = name_;
  e.tid = buffer_->tid;
  e.depth = depth_;
  e.start_ns = start_ns_ - buffer_->session_start_ns;
  e.dur_ns = end_ns - start_ns_;
  e.arg = arg_;
  e.has_arg = has_arg_;
  std::lock_guard<std::mutex> lock(buffer_->mu);
  buffer_->events.push_back(e);
}

void TraceCounterAdd(const char* name, uint64_t delta) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->counters[name] += delta;
}

void TraceGaugeMax(const char* name, uint64_t value) {
  ThreadBuffer* buf = trace_internal::CurrentBuffer();
  if (buf == nullptr) return;
  std::lock_guard<std::mutex> lock(buf->mu);
  uint64_t& g = buf->gauges[name];
  g = std::max(g, value);
}

PhaseTimer::PhaseTimer(const char* span_name, double* accumulate_seconds)
    : span_(span_name),
      accumulate_seconds_(accumulate_seconds),
      start_ns_(NowNs()) {}

PhaseTimer::~PhaseTimer() { Stop(); }

void PhaseTimer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (accumulate_seconds_ != nullptr) {
    *accumulate_seconds_ += static_cast<double>(NowNs() - start_ns_) * 1e-9;
  }
}

}  // namespace depminer
