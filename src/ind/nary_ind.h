#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "ind/unary_ind.h"
#include "relation/relation.h"

namespace depminer {

/// An n-ary inclusion dependency R[A₁...Aₖ] ⊆ S[B₁...Bₖ]: every tuple of
/// the lhs projection (as a *sequence* of attributes — order matters)
/// occurs among the rhs projection's tuples. Arity-1 degenerates to
/// `UnaryInd`.
struct NaryInd {
  size_t lhs_relation = 0;
  std::vector<AttributeId> lhs_attributes;
  size_t rhs_relation = 0;
  std::vector<AttributeId> rhs_attributes;

  size_t arity() const { return lhs_attributes.size(); }

  bool operator==(const NaryInd& o) const {
    return lhs_relation == o.lhs_relation && rhs_relation == o.rhs_relation &&
           lhs_attributes == o.lhs_attributes &&
           rhs_attributes == o.rhs_attributes;
  }
};

/// Options for n-ary discovery.
struct NaryIndOptions {
  /// Maximum arity explored (the lattice can explode combinatorially).
  size_t max_arity = 3;
  /// Forwarded to the unary seeding pass.
  IndOptions unary;
};

/// Statistics of a discovery run.
struct NaryIndStats {
  size_t unary_count = 0;
  size_t candidates_checked = 0;
  std::vector<size_t> valid_per_arity;  ///< [0] unused; [k] = arity k
};

/// Levelwise n-ary IND discovery in the style of MIND (De Marchi et al.),
/// seeded with the unary INDs of [KMRS92]-style profiling: arity-(k+1)
/// candidates join two valid arity-k INDs sharing relations and their
/// first k−1 attribute pairs; the projection-closure property of INDs
/// (every sub-IND of a valid IND is valid) makes the standard Apriori
/// prune sound. Validity is checked by hashing the rhs projection and
/// probing with the lhs projection.
///
/// Returned INDs use strictly increasing lhs attribute sequences (each
/// lhs combination is reported once; rhs order follows the match), skip
/// identical lhs/rhs sides, and include every arity from 1 up to
/// `max_arity`.
std::vector<NaryInd> DiscoverNaryInds(
    const std::vector<const Relation*>& relations,
    const NaryIndOptions& options = {}, NaryIndStats* stats = nullptr);

/// True iff the IND holds between the given relations (direct check).
bool IndHolds(const std::vector<const Relation*>& relations,
              const NaryInd& ind);

/// "orders.[customer_id,site] <= customers.[id,site]" rendering.
std::string IndToString(const NaryInd& ind,
                        const std::vector<const Relation*>& relations,
                        const std::vector<std::string>& labels);

}  // namespace depminer
