#include "ind/unary_ind.h"

#include <unordered_set>

namespace depminer {

namespace {

struct ColumnIndex {
  size_t relation = 0;
  AttributeId attribute = 0;
  const std::vector<std::string>* values = nullptr;  // dictionary
  std::unordered_set<std::string_view> value_set;
};

}  // namespace

std::vector<UnaryInd> DiscoverUnaryInds(
    const std::vector<const Relation*>& relations, const IndOptions& options) {
  // Build per-column value sets over dictionary entries (distinct values;
  // dictionaries are exactly π_A(r)).
  std::vector<ColumnIndex> columns;
  for (size_t r = 0; r < relations.size(); ++r) {
    const Relation& relation = *relations[r];
    for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
      if (options.max_distinct != 0 &&
          relation.DistinctCount(a) > options.max_distinct) {
        continue;
      }
      ColumnIndex column;
      column.relation = r;
      column.attribute = a;
      column.values = &relation.Dictionary(a);
      column.value_set.reserve(column.values->size() * 2);
      for (const std::string& v : *column.values) {
        column.value_set.insert(v);
      }
      columns.push_back(std::move(column));
    }
  }

  std::vector<UnaryInd> out;
  for (const ColumnIndex& lhs : columns) {
    for (const ColumnIndex& rhs : columns) {
      const bool reflexive = lhs.relation == rhs.relation &&
                             lhs.attribute == rhs.attribute;
      if (reflexive && !options.include_reflexive) continue;
      // |lhs| > |rhs| can never be included.
      if (lhs.value_set.size() > rhs.value_set.size()) continue;
      bool included = true;
      if (!reflexive) {
        for (const std::string& v : *lhs.values) {
          if (rhs.value_set.find(v) == rhs.value_set.end()) {
            included = false;
            break;
          }
        }
      }
      if (included) {
        out.push_back(UnaryInd{lhs.relation, lhs.attribute, rhs.relation,
                               rhs.attribute});
      }
    }
  }
  return out;
}

std::string IndToString(const UnaryInd& ind,
                        const std::vector<const Relation*>& relations,
                        const std::vector<std::string>& labels) {
  auto label = [&](size_t r) {
    if (r < labels.size()) return labels[r];
    std::string fallback = std::to_string(r);
    fallback.insert(fallback.begin(), 'r');
    return fallback;
  };
  return label(ind.lhs_relation) + "." +
         relations[ind.lhs_relation]->schema().name(ind.lhs_attribute) +
         " <= " + label(ind.rhs_relation) + "." +
         relations[ind.rhs_relation]->schema().name(ind.rhs_attribute);
}

}  // namespace depminer
