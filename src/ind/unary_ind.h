#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// A unary inclusion dependency R[A] ⊆ S[B]: every value of column A of
/// relation `lhs_relation` occurs in column B of `rhs_relation`.
struct UnaryInd {
  size_t lhs_relation = 0;
  AttributeId lhs_attribute = 0;
  size_t rhs_relation = 0;
  AttributeId rhs_attribute = 0;

  bool operator==(const UnaryInd& o) const {
    return lhs_relation == o.lhs_relation &&
           lhs_attribute == o.lhs_attribute &&
           rhs_relation == o.rhs_relation && rhs_attribute == o.rhs_attribute;
  }
};

/// Options for IND discovery.
struct IndOptions {
  /// Skip trivial R[A] ⊆ R[A].
  bool include_reflexive = false;
  /// Columns with more distinct values than this are not considered as
  /// either side (guards memory on wide text columns). 0 = unlimited.
  size_t max_distinct = 0;
};

/// Discovers all unary inclusion dependencies among the columns of the
/// given relations — the companion profiling task of the framework the
/// paper builds on (Kantola, Mannila, Räihä, Siirtola [KMRS92] mine FDs
/// and INDs together; INDs are the foreign-key candidates of logical
/// tuning).
///
/// Implementation: one value-set index per column, then pairwise subset
/// tests ordered so that |A| > |B| pairs are rejected without probing.
/// Results are deterministic (relation order, then attribute order).
std::vector<UnaryInd> DiscoverUnaryInds(
    const std::vector<const Relation*>& relations,
    const IndOptions& options = {});

/// Renders "r0.city ⊆ r1.town" using schema names and the given relation
/// labels (files, typically).
std::string IndToString(const UnaryInd& ind,
                        const std::vector<const Relation*>& relations,
                        const std::vector<std::string>& labels);

}  // namespace depminer
