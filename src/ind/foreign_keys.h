#pragma once

#include <string>
#include <vector>

#include "ind/nary_ind.h"

namespace depminer {

/// A foreign-key candidate: an inclusion dependency whose right-hand
/// side is a candidate key of its relation — the referenced columns
/// identify their rows, so the lhs columns behave like a foreign key.
struct ForeignKeyCandidate {
  NaryInd ind;
  /// True when the rhs is a *minimal* key (not just unique-in-extension
  /// superset of one).
  bool rhs_is_minimal_key = false;
};

/// Options for FK suggestion.
struct ForeignKeyOptions {
  NaryIndOptions ind;
  /// Drop suggestions whose lhs relation equals the rhs relation (self
  /// references like manager→employee are real, but same-table INDs are
  /// noisy on profiling data; off by default).
  bool skip_self_references = false;
};

/// The logical-tuning payoff of joint FD + IND discovery ([KMRS92]):
/// suggests foreign keys across the given relations — every discovered
/// IND R[X] ⊆ S[Y] where Y is unique in S (its projection has no
/// duplicate tuples), flagged when Y is additionally a minimal candidate
/// key of S as mined from its FDs.
///
/// Sorted by arity then discovery order; deterministic.
std::vector<ForeignKeyCandidate> SuggestForeignKeys(
    const std::vector<const Relation*>& relations,
    const ForeignKeyOptions& options = {});

}  // namespace depminer
