#include "ind/nary_ind.h"

#include <algorithm>
#include <unordered_set>

namespace depminer {

namespace {

/// Length-prefixed concatenation of the projected values of one tuple —
/// collision-free regardless of value content.
std::string ProjectionKey(const Relation& r, TupleId t,
                          const std::vector<AttributeId>& attrs) {
  std::string key;
  for (AttributeId a : attrs) {
    const std::string& v = r.Value(t, a);
    const uint32_t len = static_cast<uint32_t>(v.size());
    key.append(reinterpret_cast<const char*>(&len), sizeof(len));
    key.append(v);
  }
  return key;
}

/// Canonical encoding of an IND for the Apriori-prune lookups.
std::string IndKey(const NaryInd& ind) {
  std::string key;
  key += std::to_string(ind.lhs_relation);
  key += '|';
  key += std::to_string(ind.rhs_relation);
  for (size_t i = 0; i < ind.lhs_attributes.size(); ++i) {
    key += ',';
    key += std::to_string(ind.lhs_attributes[i]);
    key += ':';
    key += std::to_string(ind.rhs_attributes[i]);
  }
  return key;
}

bool TrivialSameColumns(const NaryInd& ind) {
  return ind.lhs_relation == ind.rhs_relation &&
         ind.lhs_attributes == ind.rhs_attributes;
}

}  // namespace

bool IndHolds(const std::vector<const Relation*>& relations,
              const NaryInd& ind) {
  const Relation& lhs = *relations[ind.lhs_relation];
  const Relation& rhs = *relations[ind.rhs_relation];
  std::unordered_set<std::string> rhs_keys;
  rhs_keys.reserve(rhs.num_tuples() * 2);
  for (TupleId t = 0; t < rhs.num_tuples(); ++t) {
    rhs_keys.insert(ProjectionKey(rhs, t, ind.rhs_attributes));
  }
  for (TupleId t = 0; t < lhs.num_tuples(); ++t) {
    if (rhs_keys.find(ProjectionKey(lhs, t, ind.lhs_attributes)) ==
        rhs_keys.end()) {
      return false;
    }
  }
  return true;
}

std::vector<NaryInd> DiscoverNaryInds(
    const std::vector<const Relation*>& relations,
    const NaryIndOptions& options, NaryIndStats* stats) {
  NaryIndStats local;
  local.valid_per_arity.assign(options.max_arity + 1, 0);

  // Seed: unary INDs including reflexive ones — R[A] ⊆ R[A] is needed to
  // compose e.g. R[A,B] ⊆ R[A,C]; purely reflexive results are filtered
  // from the output below unless the caller asked for them.
  IndOptions unary_options = options.unary;
  unary_options.include_reflexive = true;
  const std::vector<UnaryInd> unary =
      DiscoverUnaryInds(relations, unary_options);
  local.unary_count = unary.size();

  std::vector<NaryInd> level;
  level.reserve(unary.size());
  for (const UnaryInd& u : unary) {
    level.push_back(NaryInd{u.lhs_relation,
                            {u.lhs_attribute},
                            u.rhs_relation,
                            {u.rhs_attribute}});
  }
  local.valid_per_arity[1] = level.size();

  std::vector<NaryInd> out;
  auto emit = [&](const std::vector<NaryInd>& valid) {
    for (const NaryInd& ind : valid) {
      const bool reflexive_unary =
          ind.arity() == 1 && TrivialSameColumns(ind);
      if (TrivialSameColumns(ind)) {
        if (reflexive_unary && options.unary.include_reflexive) {
          out.push_back(ind);
        }
        continue;
      }
      out.push_back(ind);
    }
  };
  emit(level);

  for (size_t arity = 1; arity < options.max_arity && !level.empty();
       ++arity) {
    // Index of valid arity-k INDs for the Apriori prune.
    std::unordered_set<std::string> valid_keys;
    valid_keys.reserve(level.size() * 2);
    for (const NaryInd& ind : level) valid_keys.insert(IndKey(ind));

    // Sort so joinable INDs (same relations, shared prefix) are adjacent.
    std::sort(level.begin(), level.end(),
              [](const NaryInd& a, const NaryInd& b) {
                if (a.lhs_relation != b.lhs_relation) {
                  return a.lhs_relation < b.lhs_relation;
                }
                if (a.rhs_relation != b.rhs_relation) {
                  return a.rhs_relation < b.rhs_relation;
                }
                if (a.lhs_attributes != b.lhs_attributes) {
                  return a.lhs_attributes < b.lhs_attributes;
                }
                return a.rhs_attributes < b.rhs_attributes;
              });

    std::vector<NaryInd> next;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = 0; j < level.size(); ++j) {
        const NaryInd& p = level[i];
        const NaryInd& q = level[j];
        if (p.lhs_relation != q.lhs_relation ||
            p.rhs_relation != q.rhs_relation) {
          continue;
        }
        // Shared k−1 prefix; p's last lhs attribute strictly below q's
        // (keeps lhs sequences strictly increasing, each set once).
        const size_t k = p.arity();
        if (!std::equal(p.lhs_attributes.begin(),
                        p.lhs_attributes.end() - 1,
                        q.lhs_attributes.begin()) ||
            !std::equal(p.rhs_attributes.begin(),
                        p.rhs_attributes.end() - 1,
                        q.rhs_attributes.begin())) {
          continue;
        }
        if (p.lhs_attributes[k - 1] >= q.lhs_attributes[k - 1]) continue;
        // rhs attributes must stay pairwise distinct.
        if (std::find(p.rhs_attributes.begin(), p.rhs_attributes.end(),
                      q.rhs_attributes[k - 1]) != p.rhs_attributes.end()) {
          continue;
        }
        NaryInd joined = p;
        joined.lhs_attributes.push_back(q.lhs_attributes[k - 1]);
        joined.rhs_attributes.push_back(q.rhs_attributes[k - 1]);

        // Apriori prune: every arity-k sub-IND (drop one position) must
        // be valid; dropping the last two positions gives p and q.
        bool all_valid = true;
        for (size_t drop = 0; all_valid && drop + 2 < joined.arity();
             ++drop) {
          NaryInd sub;
          sub.lhs_relation = joined.lhs_relation;
          sub.rhs_relation = joined.rhs_relation;
          for (size_t pos = 0; pos < joined.arity(); ++pos) {
            if (pos == drop) continue;
            sub.lhs_attributes.push_back(joined.lhs_attributes[pos]);
            sub.rhs_attributes.push_back(joined.rhs_attributes[pos]);
          }
          if (valid_keys.find(IndKey(sub)) == valid_keys.end()) {
            all_valid = false;
          }
        }
        if (!all_valid) continue;

        ++local.candidates_checked;
        if (IndHolds(relations, joined)) next.push_back(std::move(joined));
      }
    }
    level = std::move(next);
    local.valid_per_arity[arity + 1] = level.size();
    emit(level);
  }

  if (stats != nullptr) *stats = local;
  return out;
}

std::string IndToString(const NaryInd& ind,
                        const std::vector<const Relation*>& relations,
                        const std::vector<std::string>& labels) {
  auto label = [&](size_t r) {
    if (r < labels.size()) return labels[r];
    std::string fallback = std::to_string(r);
    fallback.insert(fallback.begin(), 'r');
    return fallback;
  };
  auto attrs = [&](size_t r, const std::vector<AttributeId>& list) {
    std::string text = "[";
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0) text += ',';
      text += relations[r]->schema().name(list[i]);
    }
    text += ']';
    return text;
  };
  return label(ind.lhs_relation) + "." +
         attrs(ind.lhs_relation, ind.lhs_attributes) + " <= " +
         label(ind.rhs_relation) + "." +
         attrs(ind.rhs_relation, ind.rhs_attributes);
}

}  // namespace depminer
