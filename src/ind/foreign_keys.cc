#include "ind/foreign_keys.h"

#include <algorithm>

#include "core/dep_miner.h"
#include "core/keys_from_max_sets.h"
#include "partition/partition.h"

namespace depminer {

std::vector<ForeignKeyCandidate> SuggestForeignKeys(
    const std::vector<const Relation*>& relations,
    const ForeignKeyOptions& options) {
  // Candidate keys per relation, mined once.
  std::vector<std::vector<AttributeSet>> keys(relations.size());
  for (size_t i = 0; i < relations.size(); ++i) {
    DepMinerOptions mine_options;
    mine_options.build_armstrong = false;
    Result<DepMinerResult> mined =
        MineDependencies(*relations[i], mine_options);
    if (mined.ok()) {
      keys[i] = KeysFromMaxSets(mined.value().all_max_sets,
                                relations[i]->num_attributes());
    }
  }

  const std::vector<NaryInd> inds = DiscoverNaryInds(relations, options.ind);

  std::vector<ForeignKeyCandidate> out;
  for (const NaryInd& ind : inds) {
    if (options.skip_self_references &&
        ind.lhs_relation == ind.rhs_relation) {
      continue;
    }
    AttributeSet rhs_set;
    for (AttributeId a : ind.rhs_attributes) rhs_set.Add(a);

    // Referenced columns must identify their rows: the rhs projection is
    // duplicate-free iff every π_Y class is a singleton.
    const Relation& rhs_rel = *relations[ind.rhs_relation];
    const Partition rhs_partition = Partition::ForSet(rhs_rel, rhs_set);
    bool unique = true;
    for (const EquivalenceClass& c : rhs_partition.classes()) {
      if (c.size() > 1) {
        unique = false;
        break;
      }
    }
    if (!unique) continue;

    ForeignKeyCandidate candidate;
    candidate.ind = ind;
    candidate.rhs_is_minimal_key =
        std::find(keys[ind.rhs_relation].begin(),
                  keys[ind.rhs_relation].end(),
                  rhs_set) != keys[ind.rhs_relation].end();
    out.push_back(std::move(candidate));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const ForeignKeyCandidate& a,
                      const ForeignKeyCandidate& b) {
                     return a.ind.arity() < b.ind.arity();
                   });
  return out;
}

}  // namespace depminer
