#pragma once

#include <string>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// A minimal binary columnar file format (".dmc") for dictionary-encoded
/// relations — the library's native storage, so repeated mining of the
/// same dataset skips CSV parsing and dictionary building.
///
/// Layout (all integers little-endian):
///
///   magic "DMC1"                     4 bytes
///   num_attributes      uint32
///   num_tuples          uint64
///   per attribute:
///     name_length       uint32, then name bytes
///     dictionary_size   uint32
///     per value: length uint32, then bytes
///     codes             num_tuples × uint32
///
/// The format is intentionally simple and versioned by its magic; it is
/// not meant as an interchange format.

/// Writes a relation; overwrites any existing file.
Status WriteColumnFile(const Relation& relation, const std::string& path);

/// Reads a relation back. Fails with IoError on truncation, bad magic or
/// out-of-range codes.
Result<Relation> ReadColumnFile(const std::string& path);

}  // namespace depminer
