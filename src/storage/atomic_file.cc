#include "storage/atomic_file.h"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace depminer {

Status AtomicWriteFile(const std::string& path, const std::string& blob,
                       const std::string& tmp_suffix) {
  const std::string tmp = path + tmp_suffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp + "' for writing");
  }
  size_t written = 0;
  while (written < blob.size()) {
    const ssize_t n =
        ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("failed writing '" + tmp + "'");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync failed for '" + tmp + "'");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  // Persist the rename itself.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::OK();
}

}  // namespace depminer
