#include "storage/column_file.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/atomic_file.h"
#include "storage/binary_io.h"

namespace depminer {

namespace {

using binio::GetString;
using binio::GetU32;
using binio::GetU64;
using binio::PutString;
using binio::PutU32;
using binio::PutU64;

constexpr char kMagic[4] = {'D', 'M', 'C', '1'};

}  // namespace

Status WriteColumnFile(const Relation& relation, const std::string& path) {
  // Serialized in memory and published through the durable-write helper,
  // so a `.dmc` file either exists completely or not at all — the same
  // crash contract as the checkpoint writer and the catalog manifest.
  std::ostringstream out(std::ios::binary);
  out.write(kMagic, 4);
  PutU32(out, static_cast<uint32_t>(relation.num_attributes()));
  PutU64(out, relation.num_tuples());
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    PutString(out, relation.schema().name(a));
    const std::vector<std::string>& dict = relation.Dictionary(a);
    PutU32(out, static_cast<uint32_t>(dict.size()));
    for (const std::string& value : dict) PutString(out, value);
    const std::vector<ValueCode>& codes = relation.Column(a);
    for (ValueCode code : codes) PutU32(out, code);
  }
  if (!out) {
    return Status::IoError("failed serializing '" + path + "'");
  }
  return AtomicWriteFile(path, out.str());
}

Result<Relation> ReadColumnFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("'" + path + "' is not a DMC1 column file");
  }
  uint32_t n = 0;
  uint64_t p = 0;
  if (!GetU32(in, &n) || !GetU64(in, &p)) {
    return Status::IoError("'" + path + "': truncated header");
  }
  if (n == 0 || n > AttributeSet::kMaxAttributes) {
    return Status::IoError("'" + path + "': implausible attribute count");
  }

  std::vector<std::string> names(n);
  std::vector<std::vector<std::string>> dictionaries(n);
  std::vector<std::vector<ValueCode>> columns(n);
  for (uint32_t a = 0; a < n; ++a) {
    if (!GetString(in, &names[a])) {
      return Status::IoError("'" + path + "': truncated attribute name");
    }
    uint32_t dict_size = 0;
    if (!GetU32(in, &dict_size)) {
      return Status::IoError("'" + path + "': truncated dictionary");
    }
    dictionaries[a].resize(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      if (!GetString(in, &dictionaries[a][i])) {
        return Status::IoError("'" + path + "': truncated dictionary value");
      }
    }
    columns[a].resize(p);
    for (uint64_t t = 0; t < p; ++t) {
      uint32_t code = 0;
      if (!GetU32(in, &code)) {
        return Status::IoError("'" + path + "': truncated column data");
      }
      if (code >= dict_size) {
        return Status::IoError("'" + path + "': code out of dictionary range");
      }
      columns[a][t] = code;
    }
  }
  return Relation(Schema(std::move(names)), std::move(columns),
                  std::move(dictionaries));
}

}  // namespace depminer
