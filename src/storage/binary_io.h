#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

namespace depminer {
namespace binio {

/// Little-endian primitives shared by the storage formats (DMC1 column
/// files, DMK1 job checkpoints). Writers use iostream state for error
/// detection (check the stream after the last Put); readers return false
/// on truncation so callers can surface a precise IoError.

inline void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

inline void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

inline void PutString(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

inline bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

inline bool GetString(std::istream& in, std::string* s) {
  uint32_t length = 0;
  if (!GetU32(in, &length)) return false;
  // Defensive cap: a single value or name longer than 256 MiB indicates a
  // corrupt file, not data.
  if (length > (256u << 20)) return false;
  s->resize(length);
  return static_cast<bool>(
      in.read(s->data(), static_cast<std::streamsize>(length)));
}

}  // namespace binio
}  // namespace depminer
