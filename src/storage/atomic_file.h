#pragma once

#include <string>

#include "common/status.h"

namespace depminer {

/// Crash-durable file replacement, shared by every writer whose output
/// must survive `kill -9` (the DMK1 checkpoint writer, the catalog
/// manifest, the `.dmc` column files). The sequence is the standard
/// one: write the whole blob to a temporary sibling, `fsync` the file,
/// `rename` it over the final path, then `fsync` the containing
/// directory so the rename itself is persistent. A crash at any point
/// leaves either the complete old file or the complete new one at
/// `path`, never a torn mix and never a file whose directory entry
/// could vanish on power loss.
///
/// `tmp_suffix` names the temporary sibling (`path + tmp_suffix`);
/// callers sharing a directory pick distinct suffixes only if they may
/// write the same path concurrently (the catalog serializes writers, so
/// the default is fine).
Status AtomicWriteFile(const std::string& path, const std::string& blob,
                       const std::string& tmp_suffix = ".tmp");

}  // namespace depminer
