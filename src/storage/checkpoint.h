#pragma once

#include <string>
#include <vector>

#include "catalog/fingerprint.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "fd/fd_set.h"
#include "partition/partition_database.h"
#include "relation/csv.h"
#include "relation/schema.h"

namespace depminer {

/// The last pipeline phase a checkpoint has completed. Phases are the
/// boundaries of Figure 1's pipeline; each is a pure function of the
/// previous one's artifact, which is what makes resume-to-bit-identical
/// possible: replaying from any phase reproduces exactly the cover an
/// uninterrupted run produces, for any thread count.
enum class MinePhase : uint32_t {
  kNone = 0,
  kStrip = 1,  ///< stripped partition database extracted
  kAgree = 2,  ///< agree sets computed
  kCmax = 3,   ///< max/cmax families derived
  kCover = 4,  ///< LHS covers found; the job is done
};

const char* ToString(MinePhase phase);

/// On-disk snapshot of one mining job at a phase boundary (format DMK1).
/// Only the *latest* phase's artifact is stored — each phase's input is
/// the previous phase's output, so nothing else is needed to continue.
///
/// A checkpoint is keyed by the dataset's content fingerprint plus the
/// agree-set algorithm; `Load` callers must verify both before resuming
/// (`MineCsvWithCheckpoints` does). Saves are crash-safe: the file is
/// written to a temporary sibling, fsync'd, and renamed over the final
/// path, so a checkpoint either exists completely or not at all — a
/// `kill -9` mid-save leaves the previous checkpoint intact.
struct JobCheckpoint {
  Fingerprint fingerprint;
  AgreeSetAlgorithm algorithm = AgreeSetAlgorithm::kCouples;
  MinePhase phase = MinePhase::kNone;
  Schema schema;
  size_t num_tuples = 0;

  // Phase payload (exactly one is populated, per `phase`):
  StrippedPartitionDatabase partitions;  ///< kStrip
  AgreeSetResult agree;                  ///< kAgree
  MaxSetResult max_sets;                 ///< kCmax
  FdSet fds;                             ///< kCover

  Status Save(const std::string& path) const;

  /// Loads and structurally validates a checkpoint. Corruption or
  /// truncation is an IoError — callers fall back to a fresh mine.
  static Result<JobCheckpoint> Load(const std::string& path);
};

/// The checkpoint file a (dataset, algorithm) job uses inside `dir`:
/// `<fingerprint-hex>.<algorithm>.dmk`.
std::string CheckpointPathFor(const std::string& dir, const Fingerprint& fp,
                              AgreeSetAlgorithm algorithm);

/// Options for `MineCsvWithCheckpoints`. Only the couples and identifiers
/// algorithms are supported (the naive one needs the materialized
/// relation, which streaming extraction never builds).
struct CheckpointedMineOptions {
  AgreeSetAlgorithm algorithm = AgreeSetAlgorithm::kCouples;
  size_t num_threads = 1;
  RunContext* run_context = nullptr;
  CsvOptions csv;
  /// Directory for checkpoint files; must exist. Required.
  std::string checkpoint_dir;
};

struct CheckpointedMineResult {
  Schema schema;
  FdSet fds;
  size_t num_tuples = 0;
  Fingerprint fingerprint;
  /// Phase loaded from a prior run's checkpoint (kNone = fresh mine).
  MinePhase resumed_from = MinePhase::kNone;
  /// The job's checkpoint file (the latest state on disk).
  std::string checkpoint_path;
  /// Graceful degradation, as in DepMinerResult: false when the
  /// governing RunContext tripped; `fds` then holds whatever the
  /// interrupted phase salvaged and the checkpoint on disk still holds
  /// the last *completed* phase, so a rerun resumes there.
  bool complete = true;
  Status run_status;
};

/// Streaming mine with crash-safe phase checkpoints: fingerprints the
/// CSV, resumes from `checkpoint_dir`'s checkpoint when one matches
/// (same content, same algorithm), and saves a new checkpoint at every
/// phase boundary. A job interrupted at any point — deadline, SIGINT,
/// even `kill -9` — reruns to a cover bit-identical to an uninterrupted
/// mine, paying only for the phases past its last completed boundary; a
/// finished job (`kCover` checkpoint) is served straight from disk.
Result<CheckpointedMineResult> MineCsvWithCheckpoints(
    const std::string& path, const CheckpointedMineOptions& options);

}  // namespace depminer
