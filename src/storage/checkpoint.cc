#include "storage/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/lhs.h"
#include "fault/fault.h"
#include "storage/atomic_file.h"
#include "storage/binary_io.h"
#include "storage/streaming.h"

namespace depminer {

namespace {

using binio::GetString;
using binio::GetU32;
using binio::GetU64;
using binio::PutString;
using binio::PutU32;
using binio::PutU64;

constexpr char kMagic[4] = {'D', 'M', 'K', '1'};
constexpr uint32_t kVersion = 1;
// Trailing marker: a file missing it was truncated mid-write (only
// possible for a non-atomic writer; ours renames complete files into
// place, so hitting this means foreign interference — either way the
// checkpoint is unusable and the caller mines afresh).
constexpr uint32_t kEndMarker = 0x314B4D44;  // "DMK1" little-endian

void PutSet(std::ostream& out, const AttributeSet& s) {
  PutU64(out, s.word(0));
  PutU64(out, s.word(1));
}

bool GetSet(std::istream& in, AttributeSet* s) {
  uint64_t w0 = 0, w1 = 0;
  if (!GetU64(in, &w0) || !GetU64(in, &w1)) return false;
  *s = AttributeSet::FromWords(w0, w1);
  return true;
}

void PutSetFamily(std::ostream& out, const std::vector<AttributeSet>& sets) {
  PutU64(out, sets.size());
  for (const AttributeSet& s : sets) PutSet(out, s);
}

bool GetSetFamily(std::istream& in, std::vector<AttributeSet>* sets) {
  uint64_t count = 0;
  if (!GetU64(in, &count)) return false;
  // Defensive cap, as in the column reader: 2^32 sets is ~64 GiB.
  if (count > (uint64_t{1} << 32)) return false;
  sets->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetSet(in, &(*sets)[i])) return false;
  }
  return true;
}

Status Corrupt(const std::string& path, const char* what) {
  return Status::IoError("'" + path + "': " + what);
}

}  // namespace

const char* ToString(MinePhase phase) {
  switch (phase) {
    case MinePhase::kNone:
      return "none";
    case MinePhase::kStrip:
      return "strip";
    case MinePhase::kAgree:
      return "agree";
    case MinePhase::kCmax:
      return "cmax";
    case MinePhase::kCover:
      return "cover";
  }
  return "unknown";
}

Status JobCheckpoint::Save(const std::string& path) const {
  std::ostringstream out(std::ios::binary);
  out.write(kMagic, 4);
  PutU32(out, kVersion);
  PutU64(out, fingerprint.hi);
  PutU64(out, fingerprint.lo);
  PutU32(out, static_cast<uint32_t>(algorithm));
  PutU32(out, static_cast<uint32_t>(phase));
  const size_t n = schema.num_attributes();
  PutU32(out, static_cast<uint32_t>(n));
  for (size_t a = 0; a < n; ++a) {
    PutString(out, schema.name(static_cast<AttributeId>(a)));
  }
  PutU64(out, num_tuples);

  switch (phase) {
    case MinePhase::kStrip: {
      for (const StrippedPartition& part : partitions.partitions()) {
        PutU64(out, part.num_classes());
        for (const EquivalenceClass& ec : part.classes()) {
          PutU64(out, ec.size());
          for (TupleId t : ec) PutU32(out, t);
        }
      }
      break;
    }
    case MinePhase::kAgree: {
      PutSetFamily(out, agree.sets);
      PutU32(out, agree.contains_empty ? 1 : 0);
      break;
    }
    case MinePhase::kCmax: {
      for (size_t a = 0; a < n; ++a) {
        PutSetFamily(out, max_sets.max_sets[a]);
        PutSetFamily(out, max_sets.cmax_sets[a]);
      }
      break;
    }
    case MinePhase::kCover: {
      PutU64(out, fds.size());
      for (const FunctionalDependency& fd : fds.fds()) {
        PutSet(out, fd.lhs);
        PutU32(out, fd.rhs);
      }
      break;
    }
    case MinePhase::kNone:
      return Status::InvalidArgument("cannot save a kNone checkpoint");
  }
  PutU32(out, kEndMarker);
  if (!out) return Status::IoError("checkpoint serialization failed");
  return AtomicWriteFile(path, out.str());
}

Result<JobCheckpoint> JobCheckpoint::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  }
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Corrupt(path, "not a DMK1 checkpoint");
  }
  uint32_t version = 0;
  if (!GetU32(in, &version) || version != kVersion) {
    return Corrupt(path, "unsupported checkpoint version");
  }

  JobCheckpoint ckpt;
  uint32_t algorithm = 0, phase = 0, n = 0;
  if (!GetU64(in, &ckpt.fingerprint.hi) || !GetU64(in, &ckpt.fingerprint.lo) ||
      !GetU32(in, &algorithm) || !GetU32(in, &phase) || !GetU32(in, &n)) {
    return Corrupt(path, "truncated header");
  }
  if (algorithm > static_cast<uint32_t>(AgreeSetAlgorithm::kIdentifiers)) {
    return Corrupt(path, "implausible algorithm");
  }
  if (phase < static_cast<uint32_t>(MinePhase::kStrip) ||
      phase > static_cast<uint32_t>(MinePhase::kCover)) {
    return Corrupt(path, "implausible phase");
  }
  if (n == 0 || n > AttributeSet::kMaxAttributes) {
    return Corrupt(path, "implausible attribute count");
  }
  ckpt.algorithm = static_cast<AgreeSetAlgorithm>(algorithm);
  ckpt.phase = static_cast<MinePhase>(phase);

  std::vector<std::string> names(n);
  for (uint32_t a = 0; a < n; ++a) {
    if (!GetString(in, &names[a])) return Corrupt(path, "truncated schema");
  }
  ckpt.schema = Schema(std::move(names));
  uint64_t num_tuples = 0;
  if (!GetU64(in, &num_tuples)) return Corrupt(path, "truncated header");
  ckpt.num_tuples = num_tuples;

  switch (ckpt.phase) {
    case MinePhase::kStrip: {
      std::vector<StrippedPartition> parts;
      parts.reserve(n);
      for (uint32_t a = 0; a < n; ++a) {
        uint64_t num_classes = 0;
        if (!GetU64(in, &num_classes) || num_classes > num_tuples) {
          return Corrupt(path, "truncated partition");
        }
        std::vector<EquivalenceClass> classes(num_classes);
        for (uint64_t c = 0; c < num_classes; ++c) {
          uint64_t size = 0;
          if (!GetU64(in, &size) || size < 2 || size > num_tuples) {
            return Corrupt(path, "implausible equivalence class");
          }
          classes[c].resize(size);
          for (uint64_t i = 0; i < size; ++i) {
            uint32_t t = 0;
            if (!GetU32(in, &t) || t >= num_tuples) {
              return Corrupt(path, "tuple id out of range");
            }
            classes[c][i] = t;
          }
        }
        parts.emplace_back(std::move(classes), num_tuples);
      }
      ckpt.partitions =
          StrippedPartitionDatabase::FromParts(std::move(parts), num_tuples);
      break;
    }
    case MinePhase::kAgree: {
      if (!GetSetFamily(in, &ckpt.agree.sets)) {
        return Corrupt(path, "truncated agree sets");
      }
      uint32_t contains_empty = 0;
      if (!GetU32(in, &contains_empty)) {
        return Corrupt(path, "truncated agree sets");
      }
      ckpt.agree.contains_empty = contains_empty != 0;
      ckpt.agree.num_tuples = num_tuples;
      ckpt.agree.num_attributes = n;
      break;
    }
    case MinePhase::kCmax: {
      ckpt.max_sets.num_attributes = n;
      ckpt.max_sets.max_sets.resize(n);
      ckpt.max_sets.cmax_sets.resize(n);
      for (uint32_t a = 0; a < n; ++a) {
        if (!GetSetFamily(in, &ckpt.max_sets.max_sets[a]) ||
            !GetSetFamily(in, &ckpt.max_sets.cmax_sets[a])) {
          return Corrupt(path, "truncated max-set families");
        }
      }
      break;
    }
    case MinePhase::kCover: {
      uint64_t num_fds = 0;
      if (!GetU64(in, &num_fds) || num_fds > (uint64_t{1} << 32)) {
        return Corrupt(path, "truncated FD cover");
      }
      std::vector<FunctionalDependency> fds(num_fds);
      for (uint64_t i = 0; i < num_fds; ++i) {
        uint32_t rhs = 0;
        if (!GetSet(in, &fds[i].lhs) || !GetU32(in, &rhs) || rhs >= n) {
          return Corrupt(path, "truncated FD cover");
        }
        fds[i].rhs = rhs;
      }
      ckpt.fds = FdSet(n, std::move(fds));
      break;
    }
    case MinePhase::kNone:
      break;  // unreachable: phase validated above
  }

  uint32_t end = 0;
  if (!GetU32(in, &end) || end != kEndMarker) {
    return Corrupt(path, "missing end marker (truncated checkpoint)");
  }
  return ckpt;
}

std::string CheckpointPathFor(const std::string& dir, const Fingerprint& fp,
                              AgreeSetAlgorithm algorithm) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += fp.ToHex();
  path += '.';
  path += ToString(algorithm);
  path += ".dmk";
  return path;
}

namespace {

/// The job key: the file's raw bytes plus everything else that changes
/// the parse (CSV dialect options). The algorithm is kept out of the
/// fingerprint and put in the file name instead, so the two jobs of a
/// dataset mined with both algorithms coexist in one directory.
Result<Fingerprint> JobFingerprint(const std::string& path,
                                   const CsvOptions& csv) {
  Result<Fingerprint> file_fp = FingerprintFile(path);
  if (!file_fp.ok()) return file_fp.status();
  Fingerprinter hasher;
  hasher.UpdateU64(file_fp.value().hi);
  hasher.UpdateU64(file_fp.value().lo);
  hasher.UpdateU64(static_cast<uint64_t>(csv.delimiter));
  hasher.UpdateU64((csv.has_header ? 1u : 0u) | (csv.allow_quoting ? 2u : 0u) |
                   (csv.nulls_distinct ? 4u : 0u));
  hasher.UpdateString(csv.null_token);
  return hasher.Finish();
}

}  // namespace

Result<CheckpointedMineResult> MineCsvWithCheckpoints(
    const std::string& path, const CheckpointedMineOptions& options) {
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("checkpoint_dir is required");
  }
  if (options.algorithm == AgreeSetAlgorithm::kNaive) {
    return Status::InvalidArgument(
        "checkpointed mining supports the couples and identifiers "
        "algorithms (naive needs the materialized relation)");
  }

  Result<Fingerprint> fp = JobFingerprint(path, options.csv);
  if (!fp.ok()) return fp.status();

  // One level of directory creation (a deeper missing hierarchy is a
  // caller mistake worth surfacing at the first save instead).
  (void)::mkdir(options.checkpoint_dir.c_str(), 0755);

  CheckpointedMineResult out;
  out.fingerprint = fp.value();
  out.checkpoint_path =
      CheckpointPathFor(options.checkpoint_dir, fp.value(), options.algorithm);

  JobCheckpoint ckpt;
  {
    Result<JobCheckpoint> loaded = JobCheckpoint::Load(out.checkpoint_path);
    if (loaded.ok() && loaded.value().fingerprint == fp.value() &&
        loaded.value().algorithm == options.algorithm) {
      ckpt = std::move(loaded).value();
      out.resumed_from = ckpt.phase;
    }
    // Missing, corrupt, or mismatched (the path collided but the content
    // key disagrees): mine afresh; the first boundary save overwrites it.
  }

  RunContext* ctx = options.run_context;
  // Phase-boundary save + the `job/stall` fault site, whose hit index is
  // the number of boundaries crossed this run — a test or the
  // kill-and-resume smoke targets "the k-th boundary" with trigger_hit=k
  // and gets a deterministic window while the checkpoint already exists.
  auto save = [&](const JobCheckpoint& c) -> Status {
    Status st = c.Save(out.checkpoint_path);
    DEPMINER_FAULT_STALL("job/stall");
    return st;
  };

  if (ckpt.phase == MinePhase::kNone) {
    StreamingOptions sopt;
    sopt.csv = options.csv;
    sopt.value_sample_size = 0;  // discovery only; no Armstrong values
    sopt.run_context = ctx;
    Result<StreamingExtract> extract = ExtractFromCsv(path, sopt);
    if (!extract.ok()) return extract.status();
    ckpt.fingerprint = fp.value();
    ckpt.algorithm = options.algorithm;
    ckpt.phase = MinePhase::kStrip;
    ckpt.schema = std::move(extract.value().schema);
    ckpt.num_tuples = extract.value().num_tuples;
    ckpt.partitions = std::move(extract.value().partitions);
    DEPMINER_RETURN_NOT_OK(save(ckpt));
  }
  out.schema = ckpt.schema;
  out.num_tuples = ckpt.num_tuples;

  if (ckpt.phase == MinePhase::kStrip) {
    AgreeSetOptions aopt;
    aopt.num_threads = options.num_threads;
    aopt.run_context = ctx;
    AgreeSetResult agree =
        options.algorithm == AgreeSetAlgorithm::kIdentifiers
            ? ComputeAgreeSetsIdentifiers(ckpt.partitions, aopt)
            : ComputeAgreeSetsCouples(ckpt.partitions, aopt);
    if (!agree.status.ok()) {
      // The kStrip checkpoint on disk stays the resume point.
      out.complete = false;
      out.run_status = agree.status;
      return out;
    }
    ckpt.agree = std::move(agree);
    ckpt.phase = MinePhase::kAgree;
    ckpt.partitions = StrippedPartitionDatabase();
    DEPMINER_RETURN_NOT_OK(save(ckpt));
  }

  if (ckpt.phase == MinePhase::kAgree) {
    MaxSetResult max_sets =
        ComputeMaxSets(ckpt.agree, options.num_threads, ctx);
    if (!max_sets.status.ok()) {
      out.complete = false;
      out.run_status = max_sets.status;
      return out;
    }
    ckpt.max_sets = std::move(max_sets);
    ckpt.phase = MinePhase::kCmax;
    ckpt.agree = AgreeSetResult();
    DEPMINER_RETURN_NOT_OK(save(ckpt));
  }

  if (ckpt.phase == MinePhase::kCmax) {
    LhsResult lhs = ComputeLhs(ckpt.max_sets, options.num_threads, ctx);
    FdSet fds = OutputFds(lhs);
    if (!lhs.status.ok()) {
      // Salvage the finished attributes' FDs for the caller, but do not
      // checkpoint them: kCover means *the* cover, not part of one.
      out.fds = std::move(fds);
      out.complete = false;
      out.run_status = lhs.status;
      return out;
    }
    ckpt.fds = std::move(fds);
    ckpt.phase = MinePhase::kCover;
    ckpt.max_sets = MaxSetResult();
    DEPMINER_RETURN_NOT_OK(save(ckpt));
  }

  out.fds = ckpt.fds;
  return out;
}

}  // namespace depminer
