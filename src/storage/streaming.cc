#include "storage/streaming.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/armstrong.h"
#include "core/dep_miner.h"

namespace depminer {

namespace {

Result<StreamingExtract> ExtractFromStream(std::istream& in,
                                           const StreamingOptions& options,
                                           const std::string& origin) {
  CsvRecordReader reader(in, options.csv);

  StreamingExtract out;
  // Per column: value → dense code, and the tuple ids per code (the
  // unstripped partition, kept as dynamically growing buckets).
  std::vector<std::unordered_map<std::string, ValueCode>> code_of;
  std::vector<std::vector<EquivalenceClass>> buckets;

  std::vector<std::string> fields;
  size_t record_no = 0;
  bool have_schema = false;
  while (reader.Next(&fields)) {
    ++record_no;
    if (!have_schema) {
      if (options.csv.has_header) {
        out.schema = Schema(std::move(fields));
      } else {
        out.schema = Schema::Default(fields.size());
      }
      const size_t n = out.schema.num_attributes();
      if (n == 0) {
        return Status::InvalidArgument(origin + ": no attributes");
      }
      if (n > AttributeSet::kMaxAttributes) {
        return Status::CapacityExceeded(origin + ": too many attributes");
      }
      code_of.resize(n);
      buckets.resize(n);
      out.distinct_counts.assign(n, 0);
      out.value_samples.resize(n);
      have_schema = true;
      if (options.csv.has_header) continue;
    }
    const size_t n = out.schema.num_attributes();
    if (fields.size() != n) {
      return Status::IoError(origin + ": record " + std::to_string(record_no) +
                             " has " + std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(n));
    }
    const TupleId tuple = static_cast<TupleId>(out.num_tuples);
    for (size_t a = 0; a < n; ++a) {
      if (options.csv.nulls_distinct && fields[a] == options.csv.null_token) {
        // NULLs agree with nothing: a fresh singleton class, which the
        // stripping below immediately discards. Each NULL counts as a
        // distinct value (as in the in-memory path) but is never sampled
        // — Armstrong samples must carry real values.
        buckets[a].emplace_back().push_back(tuple);
        ++out.distinct_counts[a];
        continue;
      }
      auto [it, inserted] = code_of[a].try_emplace(
          fields[a], static_cast<ValueCode>(buckets[a].size()));
      if (inserted) {
        buckets[a].emplace_back();
        ++out.distinct_counts[a];
        if (out.value_samples[a].size() < options.value_sample_size) {
          out.value_samples[a].push_back(fields[a]);
        }
      }
      buckets[a][it->second].push_back(tuple);
    }
    ++out.num_tuples;
  }

  if (!have_schema) {
    return Status::InvalidArgument(origin + ": empty CSV input");
  }

  // Strip: only classes of size > 1 survive; this is where the memory
  // usually collapses (the paper's "small representation of a relation").
  std::vector<StrippedPartition> partitions;
  partitions.reserve(buckets.size());
  for (auto& column_buckets : buckets) {
    partitions.emplace_back(std::move(column_buckets), out.num_tuples);
    column_buckets.clear();
  }
  out.partitions = StrippedPartitionDatabase::FromParts(std::move(partitions),
                                                        out.num_tuples);
  return out;
}

}  // namespace

Result<StreamingExtract> ExtractFromCsv(const std::string& path,
                                        const StreamingOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return ExtractFromStream(in, options, path);
}

Result<StreamingExtract> ExtractFromCsvText(const std::string& content,
                                            const StreamingOptions& options) {
  std::istringstream in(content);
  return ExtractFromStream(in, options, "<string>");
}

Result<StreamingMineResult> MineCsvStreaming(const std::string& path,
                                             const StreamingOptions& options) {
  Result<StreamingExtract> extract = ExtractFromCsv(path, options);
  if (!extract.ok()) return extract.status();

  StreamingMineResult out;
  out.extract = std::move(extract).value();

  DepMinerOptions mine_options;
  mine_options.build_armstrong = false;  // built from samples below
  Result<DepMinerResult> mined =
      MineDependencies(out.extract.partitions, nullptr, mine_options);
  if (!mined.ok()) return mined.status();
  out.fds = std::move(mined.value().fds);

  Result<Relation> armstrong = BuildRealWorldArmstrongFromSamples(
      out.extract.schema, out.extract.value_samples,
      out.extract.distinct_counts, mined.value().all_max_sets);
  if (armstrong.ok()) {
    out.armstrong = std::move(armstrong).value();
    out.armstrong_status = Status::OK();
  } else {
    out.armstrong_status = armstrong.status();
  }
  return out;
}

}  // namespace depminer
