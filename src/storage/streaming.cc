#include "storage/streaming.h"

#include <sstream>
#include <unordered_map>

#include "common/file_reader.h"
#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "fault/fault.h"

namespace depminer {

namespace {

Result<StreamingExtract> ExtractFromStream(std::istream& in,
                                           const StreamingOptions& options,
                                           const std::string& origin) {
  CsvRecordReader reader(in, options.csv);
  RunContext* ctx = options.run_context;
  ScopedMemoryCharge memory(ctx);

  StreamingExtract out;
  // Per column: value → dense code, and the tuple ids per code (the
  // unstripped partition, kept as dynamically growing buckets).
  std::vector<std::unordered_map<std::string, ValueCode>> code_of;
  std::vector<std::vector<EquivalenceClass>> buckets;

  // Running working-set estimate charged against a memory budget: one
  // TupleId per cell (the partition memberships) plus the dictionary
  // strings with a nominal per-entry overhead.
  constexpr size_t kDictEntryOverhead = 64;
  constexpr size_t kCheckEveryRecords = 1024;
  size_t working_bytes = 0;

  std::vector<std::string> fields;
  size_t record_no = 0;
  bool have_schema = false;
  while (reader.Next(&fields)) {
    ++record_no;
    if (record_no % kCheckEveryRecords == 0) {
      DEPMINER_FAULT_ALLOC("alloc/streaming", ctx);
      if (ctx != nullptr && ctx->limited()) {
        memory.Set(working_bytes);
        // A partial extraction has wrong (not partial) partitions, so a
        // trip here fails the pass outright.
        DEPMINER_CHECK_RUN(ctx);
      }
    }
    if (!have_schema) {
      if (options.csv.has_header) {
        out.schema = Schema(std::move(fields));
      } else {
        out.schema = Schema::Default(fields.size());
      }
      const size_t n = out.schema.num_attributes();
      if (n == 0) {
        return Status::InvalidArgument(origin + ": no attributes");
      }
      if (n > AttributeSet::kMaxAttributes) {
        return Status::CapacityExceeded(origin + ": too many attributes");
      }
      code_of.resize(n);
      buckets.resize(n);
      out.distinct_counts.assign(n, 0);
      out.value_samples.resize(n);
      have_schema = true;
      if (options.csv.has_header) continue;
    }
    const size_t n = out.schema.num_attributes();
    if (fields.size() != n) {
      return Status::IoError(origin + ": record " + std::to_string(record_no) +
                             " has " + std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(n));
    }
    const TupleId tuple = static_cast<TupleId>(out.num_tuples);
    for (size_t a = 0; a < n; ++a) {
      if (options.csv.nulls_distinct && fields[a] == options.csv.null_token) {
        // NULLs agree with nothing: a fresh singleton class, which the
        // stripping below immediately discards. Each NULL counts as a
        // distinct value (as in the in-memory path) but is never sampled
        // — Armstrong samples must carry real values.
        buckets[a].emplace_back().push_back(tuple);
        ++out.distinct_counts[a];
        continue;
      }
      auto [it, inserted] = code_of[a].try_emplace(
          fields[a], static_cast<ValueCode>(buckets[a].size()));
      if (inserted) {
        buckets[a].emplace_back();
        ++out.distinct_counts[a];
        working_bytes += fields[a].size() + kDictEntryOverhead;
        if (out.value_samples[a].size() < options.value_sample_size) {
          out.value_samples[a].push_back(fields[a]);
        }
      }
      buckets[a][it->second].push_back(tuple);
      working_bytes += sizeof(TupleId);
    }
    ++out.num_tuples;
  }
  if (!reader.status().ok()) {
    return Status::InvalidArgument(origin + ": " + reader.status().message());
  }

  if (!have_schema) {
    return Status::InvalidArgument(origin + ": empty CSV input");
  }

  // Final charge before the stripping allocation below — also the one
  // alloc/streaming poll every input reaches (the in-loop poll only runs
  // every 1024 records).
  memory.Set(working_bytes);
  DEPMINER_FAULT_ALLOC("alloc/streaming", ctx);
  DEPMINER_CHECK_RUN(ctx);

  // Strip: only classes of size > 1 survive; this is where the memory
  // usually collapses (the paper's "small representation of a relation").
  std::vector<StrippedPartition> partitions;
  partitions.reserve(buckets.size());
  for (auto& column_buckets : buckets) {
    partitions.emplace_back(std::move(column_buckets), out.num_tuples);
    column_buckets.clear();
  }
  out.partitions = StrippedPartitionDatabase::FromParts(std::move(partitions),
                                                        out.num_tuples);
  return out;
}

}  // namespace

Result<StreamingExtract> ExtractFromCsv(const std::string& path,
                                        const StreamingOptions& options) {
  RetryingFileStream in(path);
  if (!in.is_open()) return in.status();
  Result<StreamingExtract> result = ExtractFromStream(in, options, path);
  // A mid-file read error is EOF to the record reader; without this check
  // the extraction would silently cover a truncated prefix of the data.
  if (!in.status().ok()) return in.status();
  return result;
}

Result<StreamingExtract> ExtractFromCsvText(const std::string& content,
                                            const StreamingOptions& options) {
  std::istringstream in(content);
  return ExtractFromStream(in, options, "<string>");
}

Result<StreamingMineResult> MineCsvStreaming(const std::string& path,
                                             const StreamingOptions& options) {
  Result<StreamingExtract> extract = ExtractFromCsv(path, options);
  if (!extract.ok()) return extract.status();

  StreamingMineResult out;
  out.extract = std::move(extract).value();

  DepMinerOptions mine_options;
  mine_options.build_armstrong = false;  // built from samples below
  mine_options.run_context = options.run_context;
  Result<DepMinerResult> mined =
      MineDependencies(out.extract.partitions, nullptr, mine_options);
  if (!mined.ok()) return mined.status();
  out.fds = std::move(mined.value().fds);
  if (!mined.value().complete) {
    // Whatever mining salvaged (FDs of finished attributes) is kept; the
    // Armstrong relation needs the full MAX(dep(r)) family, so it is not
    // attempted.
    out.complete = false;
    out.run_status = mined.value().run_status;
    out.armstrong_status = out.run_status;
    return out;
  }

  Result<Relation> armstrong = BuildRealWorldArmstrongFromSamples(
      out.extract.schema, out.extract.value_samples,
      out.extract.distinct_counts, mined.value().all_max_sets,
      options.run_context);
  if (armstrong.ok()) {
    out.armstrong = std::move(armstrong).value();
    out.armstrong_status = Status::OK();
  } else {
    out.armstrong_status = armstrong.status();
    const StatusCode code = armstrong.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      out.complete = false;
      out.run_status = armstrong.status();
    }
  }
  return out;
}

}  // namespace depminer
