#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "partition/partition_database.h"
#include "relation/csv.h"
#include "relation/schema.h"

namespace depminer {

/// Options for streaming extraction.
struct StreamingOptions {
  CsvOptions csv;
  /// How many distinct values per column to retain for real-world
  /// Armstrong construction (Equation 2 needs at most |MAX(dep(r))| + 1
  /// per column; the extractor cannot know that in advance, so it keeps
  /// the first `value_sample_size` in first-occurrence order). 0 keeps
  /// none (discovery only).
  size_t value_sample_size = 4096;
  /// Optional resource governance: the extraction pass checks it every
  /// ~1024 records and charges its growing working set (dictionaries +
  /// partition buckets) against the memory budget; mining and Armstrong
  /// construction inherit it. A trip during extraction fails the whole
  /// pass (a partial partition database would yield wrong FDs, not
  /// partial ones); a trip later degrades gracefully — see
  /// StreamingMineResult::complete.
  RunContext* run_context = nullptr;
};

/// What one streaming pass over a CSV produces: exactly the inputs
/// Dep-Miner needs, without ever materializing the relation.
///
/// This realizes the paper's operating model (§1, §3): "our approach is
/// defined under the assumption of limited main memory resources and its
/// feasibility does not depend on the volume of handled data. Since
/// database accesses are only performed during the computation of agree
/// sets, Dep-Miner takes in input a small representation of a relation" —
/// the stripped partition database. Where the paper pulled rows from a
/// DBMS over ODBC, we stream them from CSV; memory is
/// O(distinct values + partition memberships), never O(rows × row width)
/// of string data.
struct StreamingExtract {
  Schema schema;
  StrippedPartitionDatabase partitions;
  /// |π_A(r)| per attribute — the Proposition 1 quantities.
  std::vector<size_t> distinct_counts;
  /// First `value_sample_size` distinct values per column, in
  /// first-occurrence order (the v_{A,i} of Equation 2).
  std::vector<std::vector<std::string>> value_samples;
  size_t num_tuples = 0;
};

/// Runs the single pass.
Result<StreamingExtract> ExtractFromCsv(const std::string& path,
                                        const StreamingOptions& options = {});

/// Streaming variant over in-memory CSV text (tests).
Result<StreamingExtract> ExtractFromCsvText(const std::string& content,
                                            const StreamingOptions& options = {});

/// End-to-end streaming mining: one pass over the CSV, Dep-Miner on the
/// extracted stripped partition database, real-world Armstrong relation
/// from the retained value samples. Equivalent to
/// `MineDependencies(ReadCsvRelation(path))` but never holds the
/// relation's values in memory (beyond the per-column samples).
struct StreamingMineResult {
  StreamingExtract extract;
  FdSet fds;
  std::optional<Relation> armstrong;
  Status armstrong_status;
  /// False when StreamingOptions::run_context tripped after extraction;
  /// `fds` then holds whatever the interrupted mining phase completed and
  /// `run_status` the cause.
  bool complete = true;
  Status run_status;
};

Result<StreamingMineResult> MineCsvStreaming(
    const std::string& path, const StreamingOptions& options = {});

}  // namespace depminer
