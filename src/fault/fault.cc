#include "fault/fault.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/run_context.h"

namespace depminer {

const std::vector<FaultSite>& FaultSiteRegistry() {
  // Stable order: the fault sweep and docs walk this list.
  static const std::vector<FaultSite> kSites = {
      {"alloc/agree", FaultKind::kAlloc,
       "agree-set working-set charge (couples/identifiers/naive)"},
      {"alloc/cmax", FaultKind::kAlloc,
       "max-set derivation charge in ComputeMaxSets"},
      {"alloc/lhs", FaultKind::kAlloc,
       "left-hand-side transversal expansion in ComputeLhs"},
      {"alloc/tane", FaultKind::kAlloc,
       "TANE level-wise lattice growth charge"},
      {"alloc/fastfds", FaultKind::kAlloc,
       "FastFDs difference-set cover search charge"},
      {"alloc/fdep", FaultKind::kAlloc,
       "FDEP negative-cover specialization charge"},
      {"alloc/streaming", FaultKind::kAlloc,
       "streaming CSV extraction working-set charge"},
      {"alloc/partition_cache", FaultKind::kAlloc,
       "partition-product cache resident-byte charge"},
      {"alloc/catalog", FaultKind::kAlloc,
       "catalog Put admission charge before the column-file write"},
      {"io/manifest-write", FaultKind::kIoError,
       "catalog manifest save fails before publishing the new state"},
      {"io/csv-read", FaultKind::kIoError,
       "read(2) on the CSV byte stream fails with EIO"},
      {"io/csv-short-read", FaultKind::kShortRead,
       "read(2) on the CSV byte stream returns fewer bytes than asked"},
      {"io/csv-eintr", FaultKind::kEintr,
       "read(2) on the CSV byte stream fails with EINTR"},
      {"deadline/jitter", FaultKind::kDeadline,
       "RunContext::Check reports the deadline early"},
      {"pool/lane-stall", FaultKind::kStall,
       "worker-pool lane sleeps between block claims"},
      {"job/stall", FaultKind::kStall,
       "checkpointed-mine driver sleeps after a phase boundary"},
  };
  return kSites;
}

const FaultSite* FindFaultSite(const std::string& name) {
  for (const FaultSite& s : FaultSiteRegistry()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ActivePlan {
  FaultPlan plan;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

// Process-wide active plan. Installed/removed only by FaultScope; sites
// read it with a relaxed load, which is the whole cost of an idle site.
std::atomic<ActivePlan*> g_plan{nullptr};

FaultKind KindFor(const char* site) {
  // The prefix encodes the behavior so Poll() need not consult the
  // registry on the hot path.
  if (std::strncmp(site, "alloc/", 6) == 0) return FaultKind::kAlloc;
  if (std::strncmp(site, "io/", 3) == 0) {
    if (std::strcmp(site, "io/csv-eintr") == 0) return FaultKind::kEintr;
    if (std::strcmp(site, "io/csv-short-read") == 0)
      return FaultKind::kShortRead;
    return FaultKind::kIoError;
  }
  if (std::strncmp(site, "deadline/", 9) == 0) return FaultKind::kDeadline;
  return FaultKind::kStall;
}

}  // namespace

FaultPlan FaultPlan::FromSeed(uint64_t seed) {
  const std::vector<FaultSite>& sites = FaultSiteRegistry();
  const uint64_t a = SplitMix64(seed);
  const uint64_t b = SplitMix64(a);
  FaultPlan plan;
  plan.site = sites[a % sites.size()].name;
  plan.trigger_hit = b % 16;
  plan.repeat = (SplitMix64(b) & 1) != 0;
  return plan;
}

struct FaultScope::Impl {
  ActivePlan active;
};

FaultScope::FaultScope(FaultPlan plan) : impl_(new Impl) {
  impl_->active.plan = std::move(plan);
#if DEPMINER_FAULTS_ENABLED
  ActivePlan* expected = nullptr;
  bool installed = g_plan.compare_exchange_strong(
      expected, &impl_->active, std::memory_order_release,
      std::memory_order_relaxed);
  assert(installed && "nested FaultScope is not supported");
  (void)installed;
#endif
}

FaultScope::~FaultScope() {
#if DEPMINER_FAULTS_ENABLED
  g_plan.store(nullptr, std::memory_order_release);
#endif
  delete impl_;
}

uint64_t FaultScope::hits() const {
  return impl_->active.hits.load(std::memory_order_relaxed);
}

uint64_t FaultScope::fires() const {
  return impl_->active.fires.load(std::memory_order_relaxed);
}

namespace fault {

bool Active() {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

bool ShouldFire(const char* site) {
  ActivePlan* active = g_plan.load(std::memory_order_acquire);
  if (active == nullptr) return false;
  const FaultPlan& plan = active->plan;
  if (!plan.site.empty() && plan.site != site) return false;
  const uint64_t idx = active->hits.fetch_add(1, std::memory_order_relaxed);
  const bool fire =
      idx == plan.trigger_hit || (plan.repeat && idx > plan.trigger_hit);
  if (fire) active->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

Status Poll(const char* site) {
  if (!ShouldFire(site)) return Status::OK();
  switch (KindFor(site)) {
    case FaultKind::kAlloc:
      return Status::CapacityExceeded(std::string("injected fault: ") + site);
    case FaultKind::kDeadline:
      return Status::DeadlineExceeded(std::string("injected fault: ") + site);
    default:
      return Status::IoError(std::string("injected fault: ") + site);
  }
}

void MaybeFailAlloc(const char* site, RunContext* ctx) {
  if (!ShouldFire(site)) return;
  if (ctx != nullptr) ctx->ForceTrip(StatusCode::kCapacityExceeded);
}

void MaybeStall(const char* site) {
  if (!ShouldFire(site)) return;
  ActivePlan* active = g_plan.load(std::memory_order_acquire);
  uint32_t ms = active != nullptr ? active->plan.stall_ms : 0;
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace fault

}  // namespace depminer
