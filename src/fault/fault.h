#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Compile-time fault-injection switch, mirroring the DEPMINER_TRACING
/// idiom (common/trace.h). On by default; configure with
/// `-DDEPMINER_FAULTS=OFF` (which defines DEPMINER_FAULTS_ENABLED=0) to
/// strip every injection site out of the hot paths: the DEPMINER_FAULT_*
/// macros below expand to constants or nothing, so a disabled build's
/// miners reference no fault symbol at a site. The classes keep one
/// definition in both modes (no ODR hazard for mixed translation units);
/// only the macro expansions change.
#ifndef DEPMINER_FAULTS_ENABLED
#define DEPMINER_FAULTS_ENABLED 1
#endif

namespace depminer {

class RunContext;

/// What an injection site does when its fault fires. The behavior is a
/// property of the *site* (encoded in the registry and recoverable from
/// the site-name prefix), not of the plan — a plan only decides *when* a
/// site fires.
enum class FaultKind {
  kAlloc,      ///< allocation failure: the governing RunContext is forced
               ///< into a kCapacityExceeded verdict at a charge point
  kIoError,    ///< read syscall fails with a transient error (EIO model)
  kShortRead,  ///< read syscall returns fewer bytes than asked
  kEintr,      ///< read syscall fails with EINTR (signal interruption)
  kDeadline,   ///< RunContext::Check reports DeadlineExceeded early
  kStall,      ///< the site sleeps for FaultPlan::stall_ms
};

/// One named injection site: where in the pipeline a deterministic fault
/// can be delivered. The full taxonomy lives in docs/ROBUSTNESS.md.
struct FaultSite {
  const char* name;
  FaultKind kind;
  const char* where;  ///< human description of the code location
};

/// Every injection site compiled into the library, in stable order (the
/// fault sweep walks this; docs/ROBUSTNESS.md tabulates it).
const std::vector<FaultSite>& FaultSiteRegistry();

/// Finds a registry entry by exact name; nullptr when unknown.
const FaultSite* FindFaultSite(const std::string& name);

/// A deterministic schedule of exactly one fault: the named site fails on
/// its `trigger_hit`-th poll (0-based, counted process-wide across all
/// threads while the plan is installed). With `repeat`, every poll from
/// the trigger on fails — the model for a persistently bad disk; without
/// it, one failure then clean behavior — the model for a transient error.
struct FaultPlan {
  std::string site;          ///< exact site name; empty matches every site
  uint64_t trigger_hit = 0;  ///< first firing poll, 0-based
  bool repeat = false;       ///< keep firing after the trigger
  uint32_t stall_ms = 2;     ///< sleep duration for kStall sites

  /// Derives a plan from a seed: site and trigger hit are a deterministic
  /// function of `seed` (splitmix64 mixing), so a failing seed names its
  /// exact fault schedule. `fdtool fuzz --faults` walks sites explicitly
  /// and uses the seed only for the trigger; this is the single-seed
  /// convenience for repros and tests.
  static FaultPlan FromSeed(uint64_t seed);
};

/// RAII installation of a FaultPlan as the process-wide active plan.
/// At most one plan is active at a time (nesting asserts). Contract, as
/// for TraceSession: destruction must not race with instrumented work —
/// every pipeline stage joins its parallel loops before returning, so
/// uninstalling after a miner returns is always safe.
///
/// In a faults-disabled build installation is a no-op and `hits()`/
/// `fires()` stay 0 (no site polls).
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Polls observed at matching sites so far.
  uint64_t hits() const;
  /// Faults actually delivered so far.
  uint64_t fires() const;

 private:
  struct Impl;
  Impl* impl_;
};

namespace fault {

/// True when a plan is installed (one relaxed atomic load — the entire
/// cost of an idle injection site).
bool Active();

/// Counts a poll at `site` against the active plan and decides whether
/// the fault fires here. The building block behavioral sites use
/// directly; error sites go through `Poll`/`MaybeFailAlloc`.
bool ShouldFire(const char* site);

/// Error-site poll: OK, or the site's injected status (kIoError →
/// IoError, kDeadline → DeadlineExceeded, kAlloc → CapacityExceeded)
/// when the fault fires.
Status Poll(const char* site);

/// Allocation-failure site at a memory-budget charge point: when the
/// fault fires, `ctx` (if any) is forced into a kCapacityExceeded
/// verdict, so every later Check()/StopRequested() observes a budget
/// trip and the stage winds down through its ordinary partial-result
/// path — exactly what a failed working-set allocation would cause.
void MaybeFailAlloc(const char* site, RunContext* ctx);

/// Stall site: sleeps for the plan's `stall_ms` when the fault fires.
void MaybeStall(const char* site);

}  // namespace fault

#if DEPMINER_FAULTS_ENABLED
#define DEPMINER_FAULT_FIRES(site) ::depminer::fault::ShouldFire(site)
#define DEPMINER_FAULT_POLL(site) ::depminer::fault::Poll(site)
#define DEPMINER_FAULT_ALLOC(site, ctx) \
  ::depminer::fault::MaybeFailAlloc((site), (ctx))
#define DEPMINER_FAULT_STALL(site) ::depminer::fault::MaybeStall(site)
#else
// Expansions reference no fault symbol and fold to constants, so a
// disabled build's hot paths carry nothing (the `sizeof` keeps the
// argument syntactically checked but unevaluated).
#define DEPMINER_FAULT_FIRES(site) false
#define DEPMINER_FAULT_POLL(site) ::depminer::Status::OK()
#define DEPMINER_FAULT_ALLOC(site, ctx)  \
  do {                                   \
    (void)sizeof((site));                \
    (void)sizeof((ctx));                 \
  } while (false)
#define DEPMINER_FAULT_STALL(site) \
  do {                             \
    (void)sizeof((site));          \
  } while (false)
#endif

}  // namespace depminer
