#pragma once

/// \file depminer.h
/// Umbrella header: the full public API of the Dep-Miner library.
///
/// Quick start:
///
///   #include "depminer.h"
///   using namespace depminer;
///
///   Result<Relation> r = ReadCsvRelation("people.csv");
///   Result<DepMinerResult> mined = MineDependencies(r.value());
///   for (const FunctionalDependency& fd : mined.value().fds.fds())
///     std::cout << fd.ToString(r.value().schema()) << "\n";

#include "catalog/catalog.h"
#include "common/arg_parser.h"
#include "common/attribute_set.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/agree_sets.h"
#include "core/armstrong.h"
#include "core/armstrong_bounds.h"
#include "core/dep_miner.h"
#include "core/inversion.h"
#include "core/keys_from_max_sets.h"
#include "core/lhs.h"
#include "core/max_sets.h"
#include "datagen/embedded_fd.h"
#include "datagen/synthetic.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "fd/chase.h"
#include "fd/closed_sets.h"
#include "fd/explain.h"
#include "fd/fd_diff.h"
#include "fd/fd_io.h"
#include "fd/fd_set.h"
#include "fd/functional_dependency.h"
#include "fd/keys.h"
#include "fd/naive_discovery.h"
#include "fd/normalization.h"
#include "fd/projection.h"
#include "fd/repair.h"
#include "fd/satisfaction.h"
#include "fd/satisfaction_checker.h"
#include "hypergraph/berge_transversals.h"
#include "ind/foreign_keys.h"
#include "ind/nary_ind.h"
#include "ind/unary_ind.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/levelwise_transversals.h"
#include "partition/partition.h"
#include "partition/partition_database.h"
#include "partition/partition_product.h"
#include "partition/stripped_partition.h"
#include "relation/csv.h"
#include "relation/relation.h"
#include "relation/relation_builder.h"
#include "relation/relation_ops.h"
#include "relation/schema.h"
#include "report/database_profile.h"
#include "report/json_writer.h"
#include "report/profile.h"
#include "storage/column_file.h"
#include "storage/streaming.h"
#include "tane/tane.h"
