#include "partition/partition_product.h"

#include <cassert>

namespace depminer {

PartitionProductWorkspace::PartitionProductWorkspace(size_t num_tuples)
    : class_of_(num_tuples, 0) {}

StrippedPartition PartitionProductWorkspace::Product(
    const StrippedPartition& lhs, const StrippedPartition& rhs) {
  assert(lhs.num_tuples() == rhs.num_tuples());
  assert(class_of_.size() >= lhs.num_tuples());

  // Pass 1: label every tuple of a non-singleton lhs class with its class
  // index (+1).
  const auto& lhs_classes = lhs.classes();
  if (scratch_.size() < lhs_classes.size()) {
    scratch_.resize(lhs_classes.size());
  }
  for (size_t i = 0; i < lhs_classes.size(); ++i) {
    for (TupleId t : lhs_classes[i]) {
      class_of_[t] = static_cast<uint32_t>(i) + 1;
    }
  }

  // Pass 2: walk rhs classes; tuples sharing both an rhs class and an lhs
  // label belong to a common product class.
  std::vector<EquivalenceClass> result;
  std::vector<uint32_t> touched;
  for (const EquivalenceClass& rc : rhs.classes()) {
    touched.clear();
    for (TupleId t : rc) {
      const uint32_t label = class_of_[t];
      if (label == 0) continue;
      std::vector<TupleId>& bucket = scratch_[label - 1];
      if (bucket.empty()) touched.push_back(label - 1);
      bucket.push_back(t);
    }
    for (uint32_t i : touched) {
      std::vector<TupleId>& bucket = scratch_[i];
      if (bucket.size() > 1) {
        result.push_back(bucket);
      }
      bucket.clear();
    }
  }

  // Reset labels for the next call.
  for (const EquivalenceClass& c : lhs_classes) {
    for (TupleId t : c) class_of_[t] = 0;
  }

  return StrippedPartition(std::move(result), lhs.num_tuples());
}

StrippedPartition PartitionProduct(const StrippedPartition& lhs,
                                   const StrippedPartition& rhs) {
  PartitionProductWorkspace ws(lhs.num_tuples());
  return ws.Product(lhs, rhs);
}

}  // namespace depminer
