#include "partition/partition.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace depminer {

namespace {

void NormalizeClasses(std::vector<EquivalenceClass>* classes) {
  for (EquivalenceClass& c : *classes) {
    std::sort(c.begin(), c.end());
  }
  std::sort(classes->begin(), classes->end(),
            [](const EquivalenceClass& a, const EquivalenceClass& b) {
              return a.front() < b.front();
            });
}

}  // namespace

Partition::Partition(std::vector<EquivalenceClass> classes, size_t num_tuples)
    : classes_(std::move(classes)), num_tuples_(num_tuples) {
  NormalizeClasses(&classes_);
}

Partition Partition::ForAttribute(const Relation& relation, AttributeId a) {
  const std::vector<ValueCode>& column = relation.Column(a);
  std::vector<EquivalenceClass> buckets(relation.DistinctCount(a));
  for (TupleId t = 0; t < column.size(); ++t) {
    buckets[column[t]].push_back(t);
  }
  // Buckets are filled in increasing tuple order already.
  std::sort(buckets.begin(), buckets.end(),
            [](const EquivalenceClass& x, const EquivalenceClass& y) {
              return x.front() < y.front();
            });
  Partition p;
  p.classes_ = std::move(buckets);
  p.num_tuples_ = relation.num_tuples();
  return p;
}

Partition Partition::ForSet(const Relation& relation, const AttributeSet& x) {
  const size_t p = relation.num_tuples();
  if (p == 0) return Partition({}, 0);
  if (x.Empty()) {
    // π_∅ has a single class containing every tuple.
    EquivalenceClass all(p);
    for (TupleId t = 0; t < p; ++t) all[t] = t;
    return Partition({std::move(all)}, p);
  }
  const std::vector<AttributeId> attrs = x.Members();
  // Hash the code combination of each tuple. Combine codes with a simple
  // polynomial hash over 64 bits; collisions are resolved by bucket lists
  // keyed on the full key vector.
  std::unordered_map<std::string, EquivalenceClass> groups;
  groups.reserve(p * 2);
  std::string key;
  for (TupleId t = 0; t < p; ++t) {
    key.clear();
    for (AttributeId a : attrs) {
      const ValueCode c = relation.Code(t, a);
      key.append(reinterpret_cast<const char*>(&c), sizeof(c));
    }
    groups[key].push_back(t);
  }
  std::vector<EquivalenceClass> classes;
  classes.reserve(groups.size());
  for (auto& [unused_key, tuples] : groups) {
    classes.push_back(std::move(tuples));
  }
  return Partition(std::move(classes), p);
}

size_t Partition::CoveredTuples() const {
  size_t covered = 0;
  for (const EquivalenceClass& c : classes_) covered += c.size();
  return covered;
}

bool Partition::Refines(const Partition& other) const {
  // Map tuple -> class index in `other`; tuples absent from `other`'s
  // stored classes (stripped singletons) get a unique pseudo-class.
  std::vector<size_t> class_of(num_tuples_, SIZE_MAX);
  for (size_t i = 0; i < other.classes_.size(); ++i) {
    for (TupleId t : other.classes_[i]) class_of[t] = i;
  }
  size_t next_pseudo = other.classes_.size();
  for (size_t t = 0; t < class_of.size(); ++t) {
    if (class_of[t] == SIZE_MAX) class_of[t] = next_pseudo++;
  }
  for (const EquivalenceClass& c : classes_) {
    for (size_t i = 1; i < c.size(); ++i) {
      if (class_of[c[i]] != class_of[c[0]]) return false;
    }
  }
  return true;
}

size_t Partition::Rank() const {
  return classes_.size() + (num_tuples_ - CoveredTuples());
}

size_t Partition::ErrorCount() const {
  size_t error = 0;
  for (const EquivalenceClass& c : classes_) {
    if (c.size() > 1) error += c.size() - 1;
  }
  return error;
}

std::string Partition::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '{';
    for (size_t j = 0; j < classes_[i].size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(classes_[i][j] + 1);  // 1-based like the paper
    }
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace depminer
