#pragma once

#include <string>
#include <vector>

#include "partition/partition.h"

namespace depminer {

/// A stripped partition π̂_X: the equivalence classes of π_X of size > 1
/// (paper §3.1). Singleton classes carry no agree-set information — a
/// tuple alone in its class shares its X-value with no other tuple — so
/// dropping them shrinks the representation dramatically on real data.
class StrippedPartition {
 public:
  StrippedPartition() = default;
  StrippedPartition(std::vector<EquivalenceClass> classes, size_t num_tuples);

  /// Strips an ordinary partition.
  static StrippedPartition FromPartition(const Partition& partition);

  /// Builds π̂_A directly from the relation.
  static StrippedPartition ForAttribute(const Relation& relation,
                                        AttributeId a);

  const std::vector<EquivalenceClass>& classes() const { return classes_; }
  size_t num_classes() const { return classes_.size(); }
  size_t num_tuples() const { return num_tuples_; }
  bool Empty() const { return classes_.empty(); }

  /// ∑ |c| over stored classes.
  size_t CoveredTuples() const;

  /// Converts back to a full Partition by re-adding singleton classes for
  /// every uncovered tuple. Used by tests for refinement laws.
  Partition Unstrip() const;

  std::string ToString() const;

  bool operator==(const StrippedPartition& o) const {
    return num_tuples_ == o.num_tuples_ && classes_ == o.classes_;
  }

 private:
  std::vector<EquivalenceClass> classes_;
  size_t num_tuples_ = 0;
};

}  // namespace depminer
