#include "partition/partition_database.h"

#include <utility>

#include "common/parallel.h"
#include "common/trace.h"
#include "fault/fault.h"
#include "partition/partition_product.h"

namespace depminer {

StrippedPartitionDatabase StrippedPartitionDatabase::FromRelation(
    const Relation& relation, size_t num_threads) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = relation.num_tuples();
  db.partitions_.resize(relation.num_attributes());
  ParallelFor(0, relation.num_attributes(), num_threads, [&](size_t a) {
    db.partitions_[a] =
        StrippedPartition::ForAttribute(relation, static_cast<AttributeId>(a));
  });
  return db;
}

StrippedPartitionDatabase StrippedPartitionDatabase::FromParts(
    std::vector<StrippedPartition> partitions, size_t num_tuples) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = num_tuples;
  db.partitions_ = std::move(partitions);
  return db;
}

size_t StrippedPartitionDatabase::TotalMemberships() const {
  size_t total = 0;
  for (const StrippedPartition& p : partitions_) total += p.CoveredTuples();
  return total;
}

ClassLabelTable ClassLabelTable::Build(const StrippedPartitionDatabase& db,
                                       size_t num_threads) {
  ClassLabelTable table;
  table.num_tuples_ = db.num_tuples();
  table.num_attributes_ = db.num_attributes();
  table.labels_.assign(table.num_attributes_ * table.num_tuples_, 0);

  // Morselized over (attribute, class-range) units instead of one unit
  // per attribute: a whole-attribute split leaves lanes idle whenever one
  // attribute's partition is much denser than the rest (the correlated
  // benchmark schemas are exactly that shape). Units are cut to roughly
  // equal *membership* counts — the work is one store per membership —
  // and each unit writes a disjoint set of row cells (classes within a
  // stripped partition are disjoint, rows are per-attribute), so the
  // table is identical for any thread count and scheduling order. The
  // label of class i is always i + 1, independent of the cut points.
  struct Unit {
    AttributeId attr;
    uint32_t class_lo, class_hi;
  };
  const size_t target = std::max<size_t>(
      4096, db.TotalMemberships() / (8 * std::max<size_t>(1, num_threads)));
  std::vector<Unit> units;
  for (AttributeId a = 0; a < db.num_attributes(); ++a) {
    const std::vector<EquivalenceClass>& classes = db.partition(a).classes();
    uint32_t lo = 0;
    size_t acc = 0;
    for (uint32_t i = 0; i < classes.size(); ++i) {
      acc += classes[i].size();
      if (acc >= target) {
        units.push_back({a, lo, i + 1});
        lo = i + 1;
        acc = 0;
      }
    }
    if (lo < classes.size()) {
      units.push_back({a, lo, static_cast<uint32_t>(classes.size())});
    }
  }

  ParallelFor(0, units.size(), num_threads, [&](size_t u) {
    const Unit& unit = units[u];
    uint32_t* row = table.labels_.data() +
                    static_cast<size_t>(unit.attr) * table.num_tuples_;
    const std::vector<EquivalenceClass>& classes =
        db.partition(unit.attr).classes();
    for (uint32_t i = unit.class_lo; i < unit.class_hi; ++i) {
      const uint32_t id = i + 1;
      for (TupleId t : classes[i]) row[t] = id;
    }
  });
  return table;
}

PartitionCache::PartitionCache(const StrippedPartitionDatabase* base)
    : PartitionCache(base, Config()) {}

PartitionCache::PartitionCache(const StrippedPartitionDatabase* base,
                               Config config)
    : base_(base), config_(std::move(config)) {}

PartitionCache::~PartitionCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.run_context != nullptr && stats_.bytes != 0) {
    config_.run_context->ReleaseBytes(stats_.bytes);
  }
}

size_t PartitionCache::EntryBytes(const StrippedPartition& partition) {
  return sizeof(StrippedPartition) +
         partition.num_classes() * sizeof(EquivalenceClass) +
         partition.CoveredTuples() * sizeof(TupleId);
}

std::shared_ptr<const StrippedPartition> PartitionCache::FindLocked(
    const AttributeSet& x) {
  auto it = entries_.find(x);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.partition;
}

void PartitionCache::EvictForLocked(size_t extra) {
  while (!lru_.empty() && stats_.bytes + extra > config_.max_bytes) {
    auto victim = entries_.find(lru_.back());
    stats_.bytes -= victim->second.bytes;
    if (config_.run_context != nullptr) {
      config_.run_context->ReleaseBytes(victim->second.bytes);
    }
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PartitionCache::DegradeLocked() {
  if (config_.run_context != nullptr && stats_.bytes != 0) {
    config_.run_context->ReleaseBytes(stats_.bytes);
  }
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.degraded = true;
}

std::shared_ptr<const StrippedPartition> PartitionCache::Lookup(
    const AttributeSet& x) {
  if (x.Count() == 1) {
    // The base database is the permanent level-1 layer: alias it (the
    // empty deleter shares no ownership; base_ outlives the cache by
    // contract).
    AttributeId a = 0;
    x.ForEach([&a](AttributeId id) { a = id; });
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return {std::shared_ptr<const void>(), &base_->partition(a)};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<const StrippedPartition> found = FindLocked(x);
  if (found != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return found;
}

void PartitionCache::Insert(const AttributeSet& x,
                            std::shared_ptr<const StrippedPartition> partition) {
  RunContext* ctx = config_.run_context;
  // The charge below is the cache's working-set allocation; a firing
  // fault here models it failing, which trips the context and is then
  // observed like any real trip.
  DEPMINER_FAULT_ALLOC("alloc/partition_cache", ctx);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.degraded) return;
  if (ctx != nullptr && ctx->limited() && !ctx->Check().ok()) {
    DegradeLocked();
    return;
  }
  if (x.Count() < 2 || partition == nullptr) return;
  auto it = entries_.find(x);
  if (it != entries_.end()) {
    // Deterministic values: an existing entry is the same partition.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  const size_t bytes = EntryBytes(*partition);
  if (bytes > config_.max_bytes) return;  // can never fit
  EvictForLocked(bytes);
  lru_.push_front(x);
  Entry entry;
  entry.partition = std::move(partition);
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  entries_.emplace(x, std::move(entry));
  stats_.bytes += bytes;
  ++stats_.inserts;
  if (ctx != nullptr) ctx->ChargeBytes(bytes);
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(
    const AttributeSet& x) {
  const size_t m = x.Count();
  if (m == 0) return nullptr;
  if (m == 1) return Lookup(x);
  // Probe latency split by outcome: hits are a map lookup, misses pay
  // for the product chain below — the histogram gap is the cache's value.
  DEPMINER_TRACE_HIST_TIMER(probe_timer, "partition_probe_ns/miss");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<const StrippedPartition> found = FindLocked(x);
    if (found != nullptr) {
      ++stats_.hits;
      probe_timer.SetName("partition_probe_ns/hit");
      return found;
    }
    ++stats_.misses;
  }

  // Miss: extend the longest cached prefix of X's attribute chain. The
  // prefix decomposition is canonical (attributes in increasing order),
  // so repeated probes over overlapping sets share their chains.
  std::vector<AttributeId> members;
  members.reserve(m);
  x.ForEach([&members](AttributeId a) { members.push_back(a); });

  std::shared_ptr<const StrippedPartition> current;
  size_t have = 1;  // prefix length covered by `current`
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AttributeSet prefix = x;
    for (size_t len = m - 1; len >= 2; --len) {
      prefix.Remove(members[len]);
      std::shared_ptr<const StrippedPartition> found = FindLocked(prefix);
      if (found != nullptr) {
        current = std::move(found);
        have = len;
        break;
      }
    }
  }
  if (current == nullptr) {
    current = {std::shared_ptr<const void>(), &base_->partition(members[0])};
  }

  PartitionProductWorkspace workspace(base_->num_tuples());
  AttributeSet prefix;
  for (size_t i = 0; i < have; ++i) prefix.Add(members[i]);
  for (size_t i = have; i < m; ++i) {
    StrippedPartition product =
        workspace.Product(*current, base_->partition(members[i]));
    current = std::make_shared<const StrippedPartition>(std::move(product));
    prefix.Add(members[i]);
    Insert(prefix, current);
  }
  return current;
}

PartitionCache::Stats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PartitionCache::EmitTraceCounters() const {
  const Stats snapshot = stats();
  DEPMINER_TRACE_COUNTER("partition_cache.hits", snapshot.hits);
  DEPMINER_TRACE_COUNTER("partition_cache.misses", snapshot.misses);
  DEPMINER_TRACE_COUNTER("partition_cache.inserts", snapshot.inserts);
  DEPMINER_TRACE_COUNTER("partition_cache.evictions", snapshot.evictions);
  DEPMINER_TRACE_COUNTER(
      "partition_cache.hit_rate_pct",
      static_cast<size_t>(snapshot.HitRate() * 100.0 + 0.5));
}

}  // namespace depminer
