#include "partition/partition_database.h"

#include "common/parallel.h"

namespace depminer {

StrippedPartitionDatabase StrippedPartitionDatabase::FromRelation(
    const Relation& relation, size_t num_threads) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = relation.num_tuples();
  db.partitions_.resize(relation.num_attributes());
  ParallelFor(0, relation.num_attributes(), num_threads, [&](size_t a) {
    db.partitions_[a] =
        StrippedPartition::ForAttribute(relation, static_cast<AttributeId>(a));
  });
  return db;
}

StrippedPartitionDatabase StrippedPartitionDatabase::FromParts(
    std::vector<StrippedPartition> partitions, size_t num_tuples) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = num_tuples;
  db.partitions_ = std::move(partitions);
  return db;
}

size_t StrippedPartitionDatabase::TotalMemberships() const {
  size_t total = 0;
  for (const StrippedPartition& p : partitions_) total += p.CoveredTuples();
  return total;
}

ClassLabelTable ClassLabelTable::Build(const StrippedPartitionDatabase& db,
                                       size_t num_threads) {
  ClassLabelTable table;
  table.num_tuples_ = db.num_tuples();
  table.num_attributes_ = db.num_attributes();
  table.labels_.assign(table.num_attributes_ * table.num_tuples_, 0);
  ParallelFor(0, table.num_attributes_, num_threads, [&](size_t a) {
    uint32_t* row = table.labels_.data() + a * table.num_tuples_;
    uint32_t id = 1;
    for (const EquivalenceClass& c :
         db.partition(static_cast<AttributeId>(a)).classes()) {
      for (TupleId t : c) row[t] = id;
      ++id;
    }
  });
  return table;
}

}  // namespace depminer
