#include "partition/partition_database.h"

#include "common/parallel.h"

namespace depminer {

StrippedPartitionDatabase StrippedPartitionDatabase::FromRelation(
    const Relation& relation, size_t num_threads) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = relation.num_tuples();
  db.partitions_.resize(relation.num_attributes());
  ParallelFor(0, relation.num_attributes(), num_threads, [&](size_t a) {
    db.partitions_[a] =
        StrippedPartition::ForAttribute(relation, static_cast<AttributeId>(a));
  });
  return db;
}

StrippedPartitionDatabase StrippedPartitionDatabase::FromParts(
    std::vector<StrippedPartition> partitions, size_t num_tuples) {
  StrippedPartitionDatabase db;
  db.num_tuples_ = num_tuples;
  db.partitions_ = std::move(partitions);
  return db;
}

size_t StrippedPartitionDatabase::TotalMemberships() const {
  size_t total = 0;
  for (const StrippedPartition& p : partitions_) total += p.CoveredTuples();
  return total;
}

ClassLabelTable ClassLabelTable::Build(const StrippedPartitionDatabase& db,
                                       size_t num_threads) {
  ClassLabelTable table;
  table.num_tuples_ = db.num_tuples();
  table.num_attributes_ = db.num_attributes();
  table.labels_.assign(table.num_attributes_ * table.num_tuples_, 0);

  // Morselized over (attribute, class-range) units instead of one unit
  // per attribute: a whole-attribute split leaves lanes idle whenever one
  // attribute's partition is much denser than the rest (the correlated
  // benchmark schemas are exactly that shape). Units are cut to roughly
  // equal *membership* counts — the work is one store per membership —
  // and each unit writes a disjoint set of row cells (classes within a
  // stripped partition are disjoint, rows are per-attribute), so the
  // table is identical for any thread count and scheduling order. The
  // label of class i is always i + 1, independent of the cut points.
  struct Unit {
    AttributeId attr;
    uint32_t class_lo, class_hi;
  };
  const size_t target = std::max<size_t>(
      4096, db.TotalMemberships() / (8 * std::max<size_t>(1, num_threads)));
  std::vector<Unit> units;
  for (AttributeId a = 0; a < db.num_attributes(); ++a) {
    const std::vector<EquivalenceClass>& classes = db.partition(a).classes();
    uint32_t lo = 0;
    size_t acc = 0;
    for (uint32_t i = 0; i < classes.size(); ++i) {
      acc += classes[i].size();
      if (acc >= target) {
        units.push_back({a, lo, i + 1});
        lo = i + 1;
        acc = 0;
      }
    }
    if (lo < classes.size()) {
      units.push_back({a, lo, static_cast<uint32_t>(classes.size())});
    }
  }

  ParallelFor(0, units.size(), num_threads, [&](size_t u) {
    const Unit& unit = units[u];
    uint32_t* row = table.labels_.data() +
                    static_cast<size_t>(unit.attr) * table.num_tuples_;
    const std::vector<EquivalenceClass>& classes =
        db.partition(unit.attr).classes();
    for (uint32_t i = unit.class_lo; i < unit.class_hi; ++i) {
      const uint32_t id = i + 1;
      for (TupleId t : classes[i]) row[t] = id;
    }
  });
  return table;
}

}  // namespace depminer
