#pragma once

#include "partition/stripped_partition.h"

namespace depminer {

/// Workspace for computing products of stripped partitions in linear time
/// (the technique of the TANE paper [HKPT98], §4): π̂_{X∪Y} = π̂_X · π̂_Y.
///
/// The workspace owns two |r|-sized scratch arrays so repeated products —
/// TANE computes one per lattice edge — perform no allocation beyond the
/// result. Not thread-safe; use one workspace per thread.
class PartitionProductWorkspace {
 public:
  explicit PartitionProductWorkspace(size_t num_tuples);

  /// Computes the product (least refinement) of two stripped partitions
  /// over the same tuple universe. Runs in O(covered tuples) time.
  StrippedPartition Product(const StrippedPartition& lhs,
                            const StrippedPartition& rhs);

 private:
  // class_of_[t]: index (+1) of t's class in lhs during a product; 0 means
  // "not in any non-singleton lhs class".
  std::vector<uint32_t> class_of_;
  // Scratch accumulation of intersected classes, keyed by lhs class.
  std::vector<std::vector<TupleId>> scratch_;
};

/// One-shot convenience wrapper around the workspace.
StrippedPartition PartitionProduct(const StrippedPartition& lhs,
                                   const StrippedPartition& rhs);

}  // namespace depminer
