#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "relation/relation.h"

namespace depminer {

/// One equivalence class: the ids of the tuples that share a value
/// combination, in increasing order.
using EquivalenceClass = std::vector<TupleId>;

/// A partition π_X of the tuples of a relation under an attribute set X:
/// tuples are in the same class iff they agree on all of X (the paper's
/// §3.1, after [CKS86, Spy87, HKPT98]).
///
/// Classes are stored sorted by their smallest tuple id; within each class
/// tuple ids are increasing. `num_tuples` records |r| so that error
/// measures and stripping are well defined even for partitions whose
/// singleton classes were dropped.
class Partition {
 public:
  Partition() = default;
  Partition(std::vector<EquivalenceClass> classes, size_t num_tuples);

  /// Builds π_A for a single attribute from the relation's code column.
  /// O(|r|) time using the dictionary codes as dense bucket indices.
  static Partition ForAttribute(const Relation& relation, AttributeId a);

  /// Builds π_X for an attribute set by products of single attributes,
  /// or directly by hashing the code combinations. Used by tests and the
  /// naive discovery oracle. O(|r| · |X|).
  static Partition ForSet(const Relation& relation, const AttributeSet& x);

  const std::vector<EquivalenceClass>& classes() const { return classes_; }
  size_t num_classes() const { return classes_.size(); }
  size_t num_tuples() const { return num_tuples_; }

  /// Number of tuples covered by the stored classes (≤ num_tuples once
  /// stripped).
  size_t CoveredTuples() const;

  /// True iff this partition refines `other`: every class of this is a
  /// subset of some class of `other`. π_X refines π_Y whenever Y ⊆ X.
  bool Refines(const Partition& other) const;

  /// Rank ||π|| = number of classes counting singletons: for stripped
  /// inputs the implicit singletons are added back.
  size_t Rank() const;

  /// The TANE error e(X)·|r| = (covered tuples) − (number of stored
  /// non-singleton classes): the minimum number of tuples to remove so
  /// that X becomes a superkey.
  size_t ErrorCount() const;

  std::string ToString() const;

  bool operator==(const Partition& o) const {
    return num_tuples_ == o.num_tuples_ && classes_ == o.classes_;
  }

 private:
  std::vector<EquivalenceClass> classes_;
  size_t num_tuples_ = 0;
};

}  // namespace depminer
