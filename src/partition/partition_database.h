#pragma once

#include <vector>

#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace depminer {

/// The stripped partition database r̂ = ⋃_{A∈R} π̂_A (paper §3.1): one
/// stripped partition per attribute. This is the *only* representation the
/// Dep-Miner algorithms read — after construction the relation itself is
/// no longer touched (the paper's "database accesses are only performed
/// during the computation of agree sets").
class StrippedPartitionDatabase {
 public:
  StrippedPartitionDatabase() = default;

  /// Extracts r̂ from a relation in one pass per attribute. Attributes
  /// are processed on up to `num_threads` threads (independent columns;
  /// identical output for any thread count).
  static StrippedPartitionDatabase FromRelation(const Relation& relation,
                                                size_t num_threads = 1);

  /// Assembles r̂ from already-built per-attribute stripped partitions
  /// (the streaming extractor's path; see storage/streaming.h). Every
  /// partition must be over the same `num_tuples` universe.
  static StrippedPartitionDatabase FromParts(
      std::vector<StrippedPartition> partitions, size_t num_tuples);

  size_t num_attributes() const { return partitions_.size(); }
  size_t num_tuples() const { return num_tuples_; }

  const StrippedPartition& partition(AttributeId a) const {
    return partitions_[a];
  }
  const std::vector<StrippedPartition>& partitions() const {
    return partitions_;
  }

  /// Total number of stored (tuple, class) memberships — the size of the
  /// reduced representation; reported by bench statistics.
  size_t TotalMemberships() const;

 private:
  std::vector<StrippedPartition> partitions_;
  size_t num_tuples_ = 0;
};

/// Cache-friendly per-attribute class labels over a stripped partition
/// database: row a stores, for every tuple t, the 1-based id of t's class
/// within π̂_a (0 for stripped-away singletons). Rows are contiguous, so
/// the agree-set inner loops scan them sequentially instead of
/// re-labelling every partition once per couple chunk (Algorithm 2 used
/// to pay that relabel per chunk). Size is num_attributes × num_tuples
/// uint32s; `bytes()` is what memory budgets should be charged.
class ClassLabelTable {
 public:
  ClassLabelTable() = default;

  /// Labels every partition of `db`, one row per attribute, on up to
  /// `num_threads` pool lanes (rows are independent; identical output
  /// for any thread count).
  static ClassLabelTable Build(const StrippedPartitionDatabase& db,
                               size_t num_threads = 1);

  /// Row of per-tuple labels for attribute `a` (num_tuples entries).
  const uint32_t* Row(AttributeId a) const {
    return labels_.data() + static_cast<size_t>(a) * num_tuples_;
  }

  size_t num_tuples() const { return num_tuples_; }
  size_t num_attributes() const { return num_attributes_; }
  size_t bytes() const { return labels_.size() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> labels_;
  size_t num_tuples_ = 0;
  size_t num_attributes_ = 0;
};

}  // namespace depminer
