#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/attribute_set.h"
#include "common/run_context.h"
#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace depminer {

/// The stripped partition database r̂ = ⋃_{A∈R} π̂_A (paper §3.1): one
/// stripped partition per attribute. This is the *only* representation the
/// Dep-Miner algorithms read — after construction the relation itself is
/// no longer touched (the paper's "database accesses are only performed
/// during the computation of agree sets").
class StrippedPartitionDatabase {
 public:
  StrippedPartitionDatabase() = default;

  /// Extracts r̂ from a relation in one pass per attribute. Attributes
  /// are processed on up to `num_threads` threads (independent columns;
  /// identical output for any thread count).
  static StrippedPartitionDatabase FromRelation(const Relation& relation,
                                                size_t num_threads = 1);

  /// Assembles r̂ from already-built per-attribute stripped partitions
  /// (the streaming extractor's path; see storage/streaming.h). Every
  /// partition must be over the same `num_tuples` universe.
  static StrippedPartitionDatabase FromParts(
      std::vector<StrippedPartition> partitions, size_t num_tuples);

  size_t num_attributes() const { return partitions_.size(); }
  size_t num_tuples() const { return num_tuples_; }

  const StrippedPartition& partition(AttributeId a) const {
    return partitions_[a];
  }
  const std::vector<StrippedPartition>& partitions() const {
    return partitions_;
  }

  /// Total number of stored (tuple, class) memberships — the size of the
  /// reduced representation; reported by bench statistics.
  size_t TotalMemberships() const;

 private:
  std::vector<StrippedPartition> partitions_;
  size_t num_tuples_ = 0;
};

/// Cache-friendly per-attribute class labels over a stripped partition
/// database: row a stores, for every tuple t, the 1-based id of t's class
/// within π̂_a (0 for stripped-away singletons). Rows are contiguous, so
/// the agree-set inner loops scan them sequentially instead of
/// re-labelling every partition once per couple chunk (Algorithm 2 used
/// to pay that relabel per chunk). Size is num_attributes × num_tuples
/// uint32s; `bytes()` is what memory budgets should be charged.
class ClassLabelTable {
 public:
  ClassLabelTable() = default;

  /// Labels every partition of `db`, one row per attribute, on up to
  /// `num_threads` pool lanes (rows are independent; identical output
  /// for any thread count).
  static ClassLabelTable Build(const StrippedPartitionDatabase& db,
                               size_t num_threads = 1);

  /// Row of per-tuple labels for attribute `a` (num_tuples entries).
  const uint32_t* Row(AttributeId a) const {
    return labels_.data() + static_cast<size_t>(a) * num_tuples_;
  }

  size_t num_tuples() const { return num_tuples_; }
  size_t num_attributes() const { return num_attributes_; }
  size_t bytes() const { return labels_.size() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> labels_;
  size_t num_tuples_ = 0;
  size_t num_attributes_ = 0;
};

/// A memoized, byte-budgeted LRU cache of stripped-partition products
/// π̂_X over a fixed StrippedPartitionDatabase. TANE level products, AFD
/// error probes and the top-k redundancy ranking all need π̂_X for
/// attribute sets that recur across runs and probes; without a cache each
/// consumer recomputes the product chain from the per-attribute
/// partitions every time.
///
/// Entries are shared (`shared_ptr<const StrippedPartition>`), keyed by
/// attribute set, and evicted least-recently-used once `max_bytes` is
/// exceeded. Resident bytes are charged to the configured RunContext's
/// memory budget; when that context trips (budget, deadline or
/// cancellation — observed at the next insert) the cache releases every
/// charged byte and *degrades*: lookups miss, `Get` keeps computing
/// products uncached, and results stay exactly as correct as before —
/// degradation trades speed, never answers. The `alloc/partition_cache`
/// fault site models the cache's charge failing to allocate.
///
/// Thread safety: all operations lock one internal mutex. Cached values
/// are deterministic functions of the base database, so concurrent
/// hit/miss interleavings cannot change what any caller observes.
class PartitionCache {
 public:
  struct Config {
    /// Resident-byte ceiling before LRU eviction. The default fits the
    /// paper-scale grid's level-2 TANE lattices with room to spare.
    size_t max_bytes = size_t{256} << 20;
    /// Optional governance: resident bytes are charged here, and a trip
    /// degrades the cache (see class comment). nullptr = ungoverned.
    RunContext* run_context = nullptr;
  };

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t inserts = 0;
    size_t evictions = 0;
    size_t bytes = 0;  ///< currently resident
    bool degraded = false;

    double HitRate() const {
      const size_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `base` must outlive the cache; its per-attribute partitions are the
  /// (free, never-evicted) level-1 layer every product chain starts from.
  explicit PartitionCache(const StrippedPartitionDatabase* base);
  PartitionCache(const StrippedPartitionDatabase* base, Config config);
  ~PartitionCache();
  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// π̂_X, computed on a miss by extending the longest cached prefix of
  /// X's attribute chain one product at a time (each intermediate prefix
  /// is inserted, so nearby probes reuse it). Returns nullptr only for
  /// the empty set. Always returns the correct partition, cached or not.
  std::shared_ptr<const StrippedPartition> Get(const AttributeSet& x);

  /// Pure lookup: the cached π̂_X or nullptr, never computes. Single
  /// attributes always hit (they alias the base database).
  std::shared_ptr<const StrippedPartition> Lookup(const AttributeSet& x);

  /// Offers an externally computed π̂_X (e.g. a TANE level product) to
  /// the cache; ownership is shared, nothing is copied. Dropped without
  /// effect when degraded or larger than the whole budget.
  void Insert(const AttributeSet& x,
              std::shared_ptr<const StrippedPartition> partition);

  Stats stats() const;

  /// Records hits/misses/inserts/evictions and the hit rate as trace
  /// counters (docs/OBSERVABILITY.md). Call once at the end of the
  /// consuming phase.
  void EmitTraceCounters() const;

 private:
  struct Entry {
    std::shared_ptr<const StrippedPartition> partition;
    size_t bytes = 0;
    std::list<AttributeSet>::iterator lru_it;
  };

  static size_t EntryBytes(const StrippedPartition& partition);
  /// Lookup + LRU refresh; no stats. Caller holds `mutex_`.
  std::shared_ptr<const StrippedPartition> FindLocked(const AttributeSet& x);
  /// Evicts LRU entries until `extra` more bytes fit. Caller holds it.
  void EvictForLocked(size_t extra);
  /// Releases everything and enters degraded mode. Caller holds it.
  void DegradeLocked();

  const StrippedPartitionDatabase* base_;
  const Config config_;
  mutable std::mutex mutex_;
  std::list<AttributeSet> lru_;  ///< front = most recently used
  std::unordered_map<AttributeSet, Entry, AttributeSetHash> entries_;
  Stats stats_;
};

}  // namespace depminer
