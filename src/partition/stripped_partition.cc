#include "partition/stripped_partition.h"

#include <algorithm>

namespace depminer {

StrippedPartition::StrippedPartition(std::vector<EquivalenceClass> classes,
                                     size_t num_tuples)
    : num_tuples_(num_tuples) {
  classes_.reserve(classes.size());
  for (EquivalenceClass& c : classes) {
    if (c.size() > 1) {
      std::sort(c.begin(), c.end());
      classes_.push_back(std::move(c));
    }
  }
  std::sort(classes_.begin(), classes_.end(),
            [](const EquivalenceClass& a, const EquivalenceClass& b) {
              return a.front() < b.front();
            });
}

StrippedPartition StrippedPartition::FromPartition(const Partition& partition) {
  return StrippedPartition(partition.classes(), partition.num_tuples());
}

StrippedPartition StrippedPartition::ForAttribute(const Relation& relation,
                                                  AttributeId a) {
  return FromPartition(Partition::ForAttribute(relation, a));
}

size_t StrippedPartition::CoveredTuples() const {
  size_t covered = 0;
  for (const EquivalenceClass& c : classes_) covered += c.size();
  return covered;
}

Partition StrippedPartition::Unstrip() const {
  std::vector<bool> covered(num_tuples_, false);
  std::vector<EquivalenceClass> classes = classes_;
  for (const EquivalenceClass& c : classes) {
    for (TupleId t : c) covered[t] = true;
  }
  for (TupleId t = 0; t < num_tuples_; ++t) {
    if (!covered[t]) classes.push_back({t});
  }
  return Partition(std::move(classes), num_tuples_);
}

std::string StrippedPartition::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '{';
    for (size_t j = 0; j < classes_[i].size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(classes_[i][j] + 1);
    }
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace depminer
