#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "common/run_context.h"
#include "core/agree_sets.h"

namespace depminer {

/// Per-attribute maximal sets and their complements (paper Algorithm 4).
///
/// `max_sets[A]` is max(dep(r), A): the ⊆-maximal attribute sets that do
/// *not* determine A. By Lemma 3 these are the ⊆-maximal agree sets
/// avoiding A. The empty agree set participates when present — if no
/// non-empty agree set avoids A but some pair of tuples disagrees
/// everywhere, then ∅ is the largest set not determining A and
/// cmax(dep(r), A) = {R}.
///
/// `cmax_sets[A]` is cmax(dep(r), A) = {R \ X : X ∈ max(dep(r), A)}, a
/// simple hypergraph whose minimal transversals are lhs(dep(r), A).
struct MaxSetResult {
  size_t num_attributes = 0;
  std::vector<std::vector<AttributeSet>> max_sets;
  std::vector<std::vector<AttributeSet>> cmax_sets;

  /// High-water estimate (bytes) of the stage's dominant working
  /// structures: the shared sorted agree-set family, the dominance
  /// index postings and the per-lane query scratch bitmaps. Charged
  /// against the governing `RunContext` for the stage's duration.
  size_t working_bytes = 0;

  /// OK for a completed computation. When the governing `RunContext`
  /// trips (deadline, cancellation, memory budget) the tripping status
  /// is captured here *while the stage's memory charge is still held* —
  /// a memory-budget verdict is not observable from `ctx->Check()` once
  /// the stage has released its buffers, so callers must gate on this
  /// status, not on the context. Attributes not fully derived before the
  /// trip have empty families.
  Status status;

  /// MAX(dep(r)) = ⋃_A max(dep(r), A), deduplicated and sorted. This is
  /// the generator family GEN(dep(r)) used to build Armstrong relations.
  std::vector<AttributeSet> AllMaxSets() const;
};

/// Algorithm 4 (CMAX_SET). `agree` must describe the full ag(r),
/// including the ∅ flag.
///
/// One shared pass instead of n independent quadratic scans: the
/// agree-set family is sorted by descending cardinality once and indexed
/// by one global `DominanceIndex`; each attribute's max(dep(r), A) is
/// then derived read-only against that index (candidates = sets avoiding
/// A, survivors = candidates with no proper superset avoiding A), so the
/// per-attribute derivations parallelize across `num_threads` pool lanes
/// with bit-identical output for any thread count — every attribute's
/// family is a pure function of ag(r), finalized by the canonical
/// `SortSets`.
///
/// `ctx` (optional) governs the run: the family, index and per-lane
/// scratch buffers are charged against its memory budget up front, and
/// lanes poll it between candidates. On a trip, attributes not fully
/// derived are left empty and the tripping status lands in
/// `MaxSetResult::status`; callers that passed a context must gate on
/// that status, as a partial result here is not a usable CMAX family.
MaxSetResult ComputeMaxSets(const AgreeSetResult& agree,
                            size_t num_threads = 1,
                            RunContext* ctx = nullptr);

/// Reference implementation: the pre-kernel serial per-attribute loop
/// (re-filter the family and run the quadratic Max⊆ scan once per
/// attribute, O(n·|S|²)). Retained as the oracle for the CMAX
/// determinism tests and as the baseline `bench_ablation_dominance`
/// measures the shared-pass kernel against. `ctx` is checked once per
/// attribute; on a trip the remaining attributes are left empty.
MaxSetResult ComputeMaxSetsNaive(const AgreeSetResult& agree,
                                 RunContext* ctx = nullptr);

}  // namespace depminer
