#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "common/run_context.h"
#include "core/agree_sets.h"

namespace depminer {

/// Per-attribute maximal sets and their complements (paper Algorithm 4).
///
/// `max_sets[A]` is max(dep(r), A): the ⊆-maximal attribute sets that do
/// *not* determine A. By Lemma 3 these are the ⊆-maximal agree sets
/// avoiding A. The empty agree set participates when present — if no
/// non-empty agree set avoids A but some pair of tuples disagrees
/// everywhere, then ∅ is the largest set not determining A and
/// cmax(dep(r), A) = {R}.
///
/// `cmax_sets[A]` is cmax(dep(r), A) = {R \ X : X ∈ max(dep(r), A)}, a
/// simple hypergraph whose minimal transversals are lhs(dep(r), A).
struct MaxSetResult {
  size_t num_attributes = 0;
  std::vector<std::vector<AttributeSet>> max_sets;
  std::vector<std::vector<AttributeSet>> cmax_sets;

  /// MAX(dep(r)) = ⋃_A max(dep(r), A), deduplicated and sorted. This is
  /// the generator family GEN(dep(r)) used to build Armstrong relations.
  std::vector<AttributeSet> AllMaxSets() const;
};

/// Algorithm 4 (CMAX_SET). `agree` must describe the full ag(r), including
/// the ∅ flag.
///
/// `ctx` (optional) is checked once per attribute — the per-attribute
/// maximality filter is quadratic in |ag(r)|, which on wide random data
/// dominates the pipeline. On a trip the remaining attributes are left
/// empty; callers that passed a context must gate on `ctx->Check()`
/// afterwards, as a partial result here is not a usable CMAX family.
MaxSetResult ComputeMaxSets(const AgreeSetResult& agree,
                            RunContext* ctx = nullptr);

}  // namespace depminer
