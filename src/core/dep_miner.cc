#include "core/dep_miner.h"

#include "common/progress.h"
#include "common/trace.h"
#include "core/armstrong.h"
#include "report/stats_format.h"

namespace depminer {

std::string DepMinerStats::ToString() const {
  StatsLineBuilder b;
  b.Seconds("strip", strip_seconds).Seconds("agree", agree_seconds);
  b.BeginGroup()
      .Count("couples", num_couples)
      .Count("chunks", chunks)
      .Count("agree_sets", num_agree_sets)
      .Megabytes("working_mb", agree_working_bytes)
      .EndGroup();
  b.Seconds("max", max_seconds);
  b.BeginGroup().Count("max_sets", num_max_sets).EndGroup();
  b.Seconds("lhs", lhs_seconds)
      .Seconds("armstrong", armstrong_seconds)
      .Count("fds", num_fds)
      .Seconds("total", Total());
  return b.str();
}

namespace {

/// Marks `out` interrupted with the stage's tripping status and returns
/// it as a *value*: the phases that completed keep their artifacts and
/// timings (graceful degradation), the caller inspects `complete`.
DepMinerResult Interrupted(DepMinerResult&& out, Status cause) {
  out.complete = false;
  out.run_status = std::move(cause);
  return std::move(out);
}

}  // namespace

Result<DepMinerResult> MineDependencies(const Relation& relation,
                                        const DepMinerOptions& options) {
  DEPMINER_CHECK_RUN(options.run_context);
  double strip_seconds = 0;
  std::optional<StrippedPartitionDatabase> db;
  {
    PhaseTimer strip_timer("phase/strip", &strip_seconds);
    DEPMINER_PROGRESS_PHASE("strip", "attributes", relation.num_attributes());
    db = StrippedPartitionDatabase::FromRelation(relation,
                                                 options.num_threads);
    DEPMINER_PROGRESS_TICK(relation.num_attributes());
  }

  Result<DepMinerResult> result = MineDependencies(*db, &relation, options);
  if (result.ok()) result.value().stats.strip_seconds += strip_seconds;
  return result;
}

Result<DepMinerResult> MineDependencies(const StrippedPartitionDatabase& db,
                                        const Relation* relation,
                                        const DepMinerOptions& options) {
  if (db.num_attributes() == 0) {
    return Status::InvalidArgument("relation has no attributes");
  }
  if (db.num_attributes() > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  Status mining_status = options.mining.Validate();
  if (!mining_status.ok()) return mining_status;
  if (options.mining.max_g3_error > 0.0) {
    return Status::InvalidArgument(
        "approximate (g3-thresholded) discovery is TANE-only");
  }

  RunContext* ctx = options.run_context;
  DepMinerResult out;

  // Step 1 (Algorithm 1, line 1): AGREE_SET. Each phase is timed by a
  // span-owned PhaseTimer that *accumulates* into its stat when the
  // block closes — a phase re-entered (retry after a tripped context on
  // the same result) sums its attempts instead of overwriting them, the
  // double-counting hazard the old restarted Stopwatch had.
  {
    PhaseTimer agree_timer("phase/agree", &out.stats.agree_seconds);
    // The couples/identifiers engines re-declare the phase with the real
    // couple total once they have enumerated it.
    DEPMINER_PROGRESS_PHASE("agree", "couples", 0);
    switch (options.agree_set_algorithm) {
      case AgreeSetAlgorithm::kNaive: {
        if (relation == nullptr) {
          return Status::InvalidArgument(
              "naive agree-set computation needs the relation");
        }
        out.agree_sets = ComputeAgreeSetsNaive(*relation, ctx);
        break;
      }
      case AgreeSetAlgorithm::kCouples: {
        AgreeSetOptions agree_options;
        agree_options.max_couples_per_chunk = options.max_couples_per_chunk;
        agree_options.num_threads = options.num_threads;
        agree_options.run_context = ctx;
        out.agree_sets = ComputeAgreeSetsCouples(db, agree_options);
        break;
      }
      case AgreeSetAlgorithm::kIdentifiers: {
        AgreeSetOptions agree_options;
        agree_options.num_threads = options.num_threads;
        agree_options.run_context = ctx;
        out.agree_sets = ComputeAgreeSetsIdentifiers(db, agree_options);
        break;
      }
    }
  }
  out.stats.num_couples = out.agree_sets.couples_examined;
  out.stats.num_agree_sets = out.agree_sets.sets.size();
  out.stats.chunks = out.agree_sets.chunks_processed;
  out.stats.agree_working_bytes = out.agree_sets.working_bytes;
  if (!out.agree_sets.status.ok()) {
    // A partial ag(r) would make every downstream artifact silently
    // wrong (missing agree sets inflate the FD cover), so the pipeline
    // stops here; only the stats describe the interrupted phase.
    return Interrupted(std::move(out), out.agree_sets.status);
  }

  // Step 2 (line 2): CMAX_SET.
  {
    PhaseTimer max_timer("phase/cmax", &out.stats.max_seconds);
    DEPMINER_PROGRESS_PHASE("cmax", "attributes", db.num_attributes());
    out.max_sets = ComputeMaxSets(out.agree_sets, options.num_threads, ctx);
    out.all_max_sets = out.max_sets.AllMaxSets();
    DEPMINER_PROGRESS_TICK(db.num_attributes());
  }
  out.stats.num_max_sets = out.all_max_sets.size();
  if (!out.max_sets.status.ok()) {
    // Attributes skipped by an interrupted CMAX_SET have empty max/cmax
    // families, which the transversal phase would read as "∅ → A holds";
    // the result carries the trip because a budget verdict is only
    // observable while the stage's charge is held.
    return Interrupted(std::move(out), out.max_sets.status);
  }

  // Step 3 (line 3): LEFT_HAND_SIDE.
  {
    PhaseTimer lhs_timer("phase/lhs", &out.stats.lhs_seconds);
    // Transversal node count is unknown up front (total=0); the levelwise
    // search ticks per candidate level.
    DEPMINER_PROGRESS_PHASE("lhs", "nodes", 0);
    out.lhs = ComputeLhs(out.max_sets, options.num_threads, ctx,
                         options.mining.max_lhs_arity);
  }

  // Step 4 (line 4): FD_OUTPUT. On an interrupted lhs phase this keeps
  // the FDs of the attributes whose transversal search completed — they
  // are final, since attributes are independent.
  out.fds = OutputFds(out.lhs);
  out.stats.num_fds = out.fds.size();
  if (!out.lhs.status.ok()) {
    return Interrupted(std::move(out), out.lhs.status);
  }

  // Step 5 (line 5): ARMSTRONG_RELATION.
  if (options.build_armstrong && options.mining.max_lhs_arity != 0) {
    // A capped cover no longer determines MAX(dep(r)) — the Armstrong
    // construction would encode the wrong dependency set.
    out.armstrong_status = Status::InvalidArgument(
        "Armstrong construction is unavailable under an arity cap");
  } else if (options.build_armstrong) {
    if (relation == nullptr) {
      out.armstrong_status = Status::InvalidArgument(
          "real-world Armstrong construction needs the relation values");
    } else {
      PhaseTimer armstrong_timer("phase/armstrong",
                                 &out.stats.armstrong_seconds);
      DEPMINER_PROGRESS_PHASE("armstrong", "rows", 0);
      Result<Relation> armstrong =
          BuildRealWorldArmstrong(*relation, out.all_max_sets, ctx);
      armstrong_timer.Stop();
      if (armstrong.ok()) {
        out.armstrong = std::move(armstrong).value();
        out.armstrong_status = Status::OK();
      } else {
        out.armstrong_status = armstrong.status();
        const StatusCode code = armstrong.status().code();
        if (code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kCancelled) {
          return Interrupted(std::move(out), armstrong.status());
        }
      }
    }
  }

  return out;
}

}  // namespace depminer
