#pragma once

#include <vector>

#include "common/attribute_set.h"

namespace depminer {

/// Candidate keys straight from the maximal sets, without materializing
/// an FD cover.
///
/// A set X is a superkey of r iff it is contained in no maximal set: if
/// X ⊆ M ∈ MAX(dep(r)) then X⁺ ⊆ M⁺ = M ≠ R, and conversely any closed
/// set other than R lies inside some generator = maximal set [MR86].
/// Hence X is a superkey iff it intersects every complement R \ M —
/// the candidate keys are exactly the minimal transversals of the simple
/// hypergraph {R \ M : M ∈ MAX(dep(r))}.
///
/// This is the natural way to get keys out of a Dep-Miner run: the
/// maximal sets are already on hand before any FDs are emitted.
/// Results sorted by (cardinality, members). With MAX empty (|r| ≤ 1 or
/// all-constant relations) the empty set is the key.
std::vector<AttributeSet> KeysFromMaxSets(
    const std::vector<AttributeSet>& max_sets, size_t num_attributes);

}  // namespace depminer
