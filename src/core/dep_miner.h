#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/agree_sets.h"
#include "core/lhs.h"
#include "core/max_sets.h"
#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// Configuration of a Dep-Miner run.
struct DepMinerOptions {
  /// Which agree-set computation to use. kCouples is the evaluation's
  /// "Dep-Miner", kIdentifiers its "Dep-Miner 2".
  AgreeSetAlgorithm agree_set_algorithm = AgreeSetAlgorithm::kCouples;
  /// Memory threshold for kCouples (0 = unlimited); see AgreeSetOptions.
  size_t max_couples_per_chunk = 0;
  /// Also build the real-world Armstrong relation (paper: "without
  /// additional execution time" — it is a few tuples assembled from the
  /// already-computed maximal sets).
  bool build_armstrong = true;
  /// Pool lanes for the parallel pipeline stages: stripped-partition
  /// extraction, couple enumeration, the agree-set scans of Algorithms
  /// 2 and 3, and the per-attribute transversal searches. 1 = serial;
  /// DefaultThreadCount() for all cores. Output is bit-identical for
  /// any value.
  size_t num_threads = 1;
  /// Optional resource governance (deadline, cancellation, memory
  /// budget). Checked at chunk/level granularity by every pipeline stage;
  /// when it trips, `MineDependencies` returns a *value* with
  /// `DepMinerResult::complete == false`, the tripping status in
  /// `run_status`, and every artifact completed so far intact.
  RunContext* run_context = nullptr;
  /// Cross-miner search-space pruning knobs. `max_lhs_arity` caps the
  /// per-attribute transversal search (lhs families are then the
  /// unbounded ones filtered to |X| ≤ k). `max_g3_error > 0` is
  /// rejected — approximate discovery is TANE-only. With an arity cap
  /// the Armstrong relation is not built (the capped cover no longer
  /// determines MAX(dep(r))).
  MiningOptions mining;
};

/// Per-phase wall-clock timings and size statistics of a run, mirroring
/// the pipeline of Figure 1. Total() is the end-to-end discovery time the
/// paper's tables report.
struct DepMinerStats {
  double strip_seconds = 0;      ///< stripped partition database extraction
  double agree_seconds = 0;      ///< AGREE_SET / AGREE_SET 2
  double max_seconds = 0;        ///< CMAX_SET
  double lhs_seconds = 0;        ///< LEFT_HAND_SIDE
  double armstrong_seconds = 0;  ///< ARMSTRONG_RELATION

  size_t num_couples = 0;
  size_t num_agree_sets = 0;  ///< distinct, excluding ∅
  size_t num_max_sets = 0;    ///< |MAX(dep(r))|
  size_t num_fds = 0;
  size_t chunks = 0;
  /// Working-set estimate of the agree-set phase (couple list or ec
  /// lists) — the memory counterpart of TANE's peak_partition_bytes.
  size_t agree_working_bytes = 0;

  double Total() const {
    return strip_seconds + agree_seconds + max_seconds + lhs_seconds +
           armstrong_seconds;
  }
  std::string ToString() const;
};

/// Result of a Dep-Miner run: every artifact of the paper's Figure 1
/// pipeline.
struct DepMinerResult {
  FdSet fds;                      ///< minimal non-trivial FDs (a cover)
  AgreeSetResult agree_sets;
  MaxSetResult max_sets;
  LhsResult lhs;
  std::vector<AttributeSet> all_max_sets;  ///< MAX(dep(r)), deduplicated
  /// Real-world Armstrong relation, when requested and it exists
  /// (Proposition 1); `armstrong_status` explains absence otherwise.
  std::optional<Relation> armstrong;
  Status armstrong_status;
  DepMinerStats stats;
  /// Graceful degradation under a `RunContext`: false when the run was
  /// interrupted (deadline / cancellation / memory budget). `run_status`
  /// then carries the tripping status (`kDeadlineExceeded`, `kCancelled`
  /// or `kCapacityExceeded`), `stats` covers the phases that ran, and the
  /// artifacts hold everything completed before the trip — in particular
  /// `fds` keeps the per-attribute lhs families whose transversal search
  /// finished (see `LhsResult::attribute_complete`). Always true when no
  /// context (or an unarmed one) governs the run.
  bool complete = true;
  Status run_status;
};

/// Algorithm 1: the combined discovery of minimal FDs and a real-world
/// Armstrong relation.
///
///   Result<DepMinerResult> out = MineDependencies(relation);
///   for (const FunctionalDependency& fd : out.value().fds.fds()) ...
Result<DepMinerResult> MineDependencies(const Relation& relation,
                                        const DepMinerOptions& options = {});

/// Variant starting from an already-extracted stripped partition database
/// (the preprocessing the paper treats as given). `relation` is still
/// needed if `build_armstrong` is set, to harvest real-world values; pass
/// nullptr otherwise.
Result<DepMinerResult> MineDependencies(const StrippedPartitionDatabase& db,
                                        const Relation* relation,
                                        const DepMinerOptions& options = {});

}  // namespace depminer
