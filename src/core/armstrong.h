#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "common/run_context.h"
#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Builders for Armstrong relations (paper §4).
///
/// An Armstrong relation for F satisfies exactly the dependencies implied
/// by F: it exhibits every FD of dep(r) and a counterexample for every
/// non-dependency. [BDFS84]: r̄ is Armstrong for F iff
/// GEN(F) ⊆ ag(r̄) ⊆ CL(F), and MAX(F) = GEN(F) [MR86, MR94b].
///
/// Both constructions below take C = {X_0 = R} ∪ MAX(dep(r)) and emit one
/// tuple per member of C, so |r̄| = |MAX(dep(r))| + 1.

/// Classical synthetic construction (paper Equation 1, after [BDFS84,
/// MR86]): tuple t_i has t_i[A] = 0 if A ∈ X_i, i otherwise. Values are
/// rendered as decimal strings over the given schema.
///
/// Fails with InvalidArgument when the schema is empty or a max set names
/// an attribute outside it — conditions a Release build must surface as a
/// status, not silently build a corrupt relation from.
Result<Relation> BuildSyntheticArmstrong(
    const Schema& schema, const std::vector<AttributeSet>& max_sets);

/// Existence condition for a *real-world* Armstrong relation (paper
/// Proposition 1): for every attribute A the initial relation must carry
/// at least |{X ∈ MAX(dep(r)) : A ∉ X}| + 1 distinct values.
/// Returns OK, or FailedPrecondition naming the first deficient attribute.
Status RealWorldArmstrongExists(const Relation& relation,
                                const std::vector<AttributeSet>& max_sets);

/// Real-world construction (paper Equation 2, Definition 1): like the
/// synthetic one, but the "0" value of attribute A is its first distinct
/// value in r and the "i" value is the i-th distinct value — every cell
/// holds a value actually occurring in r's column A.
///
/// Fails with the Proposition 1 precondition when the initial relation
/// lacks enough distinct values. `ctx` (optional) is checked once per
/// emitted tuple — |r̄| = |MAX(dep(r))| + 1 can be exponential in |R|.
Result<Relation> BuildRealWorldArmstrong(
    const Relation& relation, const std::vector<AttributeSet>& max_sets,
    RunContext* ctx = nullptr);

/// Streaming variant of the real-world construction: builds from
/// per-column value *samples* (first-occurrence-ordered distinct values)
/// and true distinct counts instead of a materialized relation — the
/// storage/streaming.h path. Fails with FailedPrecondition if Proposition
/// 1 is violated (judged on `distinct_counts`), or with CapacityExceeded
/// if a needed value was beyond the retained sample.
Result<Relation> BuildRealWorldArmstrongFromSamples(
    const Schema& schema,
    const std::vector<std::vector<std::string>>& value_samples,
    const std::vector<size_t>& distinct_counts,
    const std::vector<AttributeSet>& max_sets, RunContext* ctx = nullptr);

/// Verifies the defining property via agree sets: every max set (= GEN
/// member) appears in ag(r̄), and every agree set of r̄ is ⊆-contained in R
/// or some max set (ag(r̄) ⊆ CL(F) — each agree set must be closed, and a
/// set is closed iff it is R or an intersection of max sets; containment
/// in this check is exact closure membership). Used by tests.
bool IsArmstrongFor(const Relation& candidate,
                    const std::vector<AttributeSet>& max_sets);

}  // namespace depminer
