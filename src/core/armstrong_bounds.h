#pragma once

#include <cstddef>

namespace depminer {

/// Size bounds for Armstrong relations ([BDFS84], paper §2/§4 context).
///
/// Any Armstrong relation r̄ for F must realize every generator of CL(F)
/// as an agree set of some tuple pair, and distinct generators need
/// distinct pairs, so C(|r̄|, 2) ≥ |GEN(F)|. The paper's constructions
/// (Equations 1 and 2) give |r̄| = |MAX(F)| + 1 = |GEN(F)| + 1, i.e.
/// within a quadratic factor of this lower bound — minimum-size Armstrong
/// relations are NP-hard territory, which is exactly why the paper aims
/// for *small*, not minimum, samples.

/// Smallest p with p(p−1)/2 ≥ num_generators (and ≥ 1 tuple for a
/// non-empty schema); 1 when num_generators == 0.
size_t ArmstrongSizeLowerBound(size_t num_generators);

/// The size of the paper's constructions: |MAX(F)| + 1.
inline size_t ArmstrongConstructionSize(size_t num_max_sets) {
  return num_max_sets + 1;
}

}  // namespace depminer
