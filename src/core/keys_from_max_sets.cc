#include "core/keys_from_max_sets.h"

#include "hypergraph/hypergraph.h"
#include "hypergraph/levelwise_transversals.h"

namespace depminer {

std::vector<AttributeSet> KeysFromMaxSets(
    const std::vector<AttributeSet>& max_sets, size_t num_attributes) {
  const AttributeSet universe = AttributeSet::Universe(num_attributes);
  Hypergraph complements(num_attributes, {});
  for (const AttributeSet& m : max_sets) {
    complements.AddEdge(universe.Minus(m));
  }
  // Keys tend to be small (like FD left-hand sides), so the paper's
  // levelwise search is the right tool here too.
  std::vector<AttributeSet> keys =
      LevelwiseMinimalTransversals(complements.Minimized());
  SortSets(&keys);
  return keys;
}

}  // namespace depminer
