#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "core/max_sets.h"
#include "fd/fd_set.h"

namespace depminer {

/// Inversion of the Dep-Miner pipeline: recover maximal sets from a
/// minimal FD cover (paper §5.1).
///
/// For a simple hypergraph H, Tr(Tr(H)) = H (Berge's nihilpotence), so
/// cmax(dep(r), A) = Tr(lhs(dep(r), A)). This is the route the paper
/// sketches for extending TANE with Armstrong relations: TANE produces
/// the minimal FDs; their left-hand-side families are transversed back
/// into complements of maximal sets, from which Armstrong relations are
/// built. The paper argues this is necessarily more expensive than
/// Dep-Miner's combined discovery — `bench_armstrong_route` measures it.
///
/// The lhs families are reconstructed from the cover as follows: for an
/// attribute A with ∅ → A in the cover (constant column), lhs(A) = {∅}
/// and cmax(A) is empty; otherwise lhs(A) = {X : X → A ∈ cover} ∪ {{A}}
/// (the trivial transversal the FD output filtered away).
///
/// `fds` must be the *complete* set of minimal non-trivial FDs (what
/// Dep-Miner or TANE emit) — an arbitrary cover would not carry the full
/// lhs families.
MaxSetResult MaxSetsFromFds(const FdSet& fds);

/// Convenience: MAX(dep(r)) (deduplicated union over attributes) straight
/// from a minimal FD cover.
std::vector<AttributeSet> AllMaxSetsFromFds(const FdSet& fds);

}  // namespace depminer
