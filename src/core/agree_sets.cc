#include "core/agree_sets.h"

#include <algorithm>
#include <atomic>

#include "common/parallel.h"
#include "common/progress.h"
#include "common/trace.h"
#include "fault/fault.h"

namespace depminer {

namespace {

uint64_t CoupleKey(TupleId a, TupleId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Enumerates the distinct couples of tuples inside a family of
/// equivalence classes; the same couple may co-occur in several classes
/// (overlapping maximal classes) and is reported once — "couples" is a
/// set in the paper's Algorithm 2. Deduplication is sort+unique over
/// packed (lo, hi) keys, which beats hashing at the couple counts the
/// benchmark grids produce. Generation writes each class's couples at a
/// precomputed offset and the sort runs on the pool, so enumeration
/// parallelizes without changing the (sorted, deduplicated) output.
class CoupleEnumerator {
 public:
  explicit CoupleEnumerator(const std::vector<EquivalenceClass>& classes,
                            size_t num_threads = 1) {
    std::vector<size_t> offsets(classes.size() + 1, 0);
    for (size_t i = 0; i < classes.size(); ++i) {
      const size_t n = classes[i].size();
      offsets[i + 1] = offsets[i] + n * (n - 1) / 2;
    }
    keys_.resize(offsets.back());
    ParallelFor(0, classes.size(), num_threads, [&](size_t ci) {
      uint64_t* out = keys_.data() + offsets[ci];
      const EquivalenceClass& c = classes[ci];
      for (size_t i = 0; i < c.size(); ++i) {
        for (size_t j = i + 1; j < c.size(); ++j) {
          *out++ = CoupleKey(c[i], c[j]);
        }
      }
    });
    ParallelSort(keys_.begin(), keys_.end(), num_threads);
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  }

  /// Calls fn(t, t') for every distinct couple; returns the couple count.
  template <typename Fn>
  size_t ForEach(Fn&& fn) const {
    for (const uint64_t key : keys_) {
      fn(static_cast<TupleId>(key >> 32),
         static_cast<TupleId>(key & 0xFFFFFFFFu));
    }
    return keys_.size();
  }

  /// The packed (lo, hi) couple keys, for loops that need to bail out
  /// mid-enumeration (RunContext checks).
  const std::vector<uint64_t>& keys() const { return keys_; }

  size_t size() const { return keys_.size(); }

 private:
  std::vector<uint64_t> keys_;
};

/// The class family couples are drawn from: the maximal equivalence
/// classes (the paper's MC, Lemma 1) or — for the ablation measuring what
/// MC pruning buys — every stripped class of every attribute.
std::vector<EquivalenceClass> CoupleSourceClasses(
    const StrippedPartitionDatabase& db, bool use_maximal_classes,
    size_t num_threads) {
  if (use_maximal_classes) return MaximalEquivalenceClasses(db, num_threads);
  std::vector<EquivalenceClass> all;
  for (const StrippedPartition& p : db.partitions()) {
    all.insert(all.end(), p.classes().begin(), p.classes().end());
  }
  return all;
}

/// Deduplicates an agree-set accumulation buffer in place (word-order
/// sort + unique — cheaper than hashing at these volumes).
void DedupSets(std::vector<AttributeSet>* sets) {
  std::sort(sets->begin(), sets->end());
  sets->erase(std::unique(sets->begin(), sets->end()), sets->end());
}

void FinalizeSets(std::vector<AttributeSet>&& distinct,
                  AgreeSetResult* result) {
  DedupSets(&distinct);
  result->sets = std::move(distinct);
  SortSets(&result->sets);
}

/// ∅ ∈ ag(r) iff some pair of tuples co-occurs in *no* stripped class,
/// which is exactly: fewer distinct couples than total pairs (Lemma 1
/// covers all pairs with a non-empty agree set).
bool EmptyAgreeSetPresent(size_t num_tuples, size_t distinct_couples) {
  if (num_tuples < 2) return false;
  const uint64_t total_pairs =
      static_cast<uint64_t>(num_tuples) * (num_tuples - 1) / 2;
  return distinct_couples < total_pairs;
}

/// The tripping status after a parallel stage observed `stopped`:
/// whatever the context reports, with a cancellation fallback for the
/// (theoretical) race where the trip is no longer observable.
Status TripStatus(const RunContext* ctx) {
  if (ctx != nullptr) {
    Status st = ctx->Check();
    if (!st.ok()) return st;
  }
  return Status::Cancelled("agree-set computation interrupted");
}

}  // namespace

std::vector<AttributeSet> AgreeSetResult::All() const {
  std::vector<AttributeSet> out = sets;
  if (contains_empty) out.insert(out.begin(), AttributeSet());
  return out;
}

const char* ToString(AgreeSetAlgorithm algorithm) {
  switch (algorithm) {
    case AgreeSetAlgorithm::kNaive:
      return "naive";
    case AgreeSetAlgorithm::kCouples:
      return "couples";       // the paper's "Dep-Miner"
    case AgreeSetAlgorithm::kIdentifiers:
      return "identifiers";   // the paper's "Dep-Miner 2"
  }
  return "unknown";
}

std::vector<EquivalenceClass> MaximalEquivalenceClasses(
    const StrippedPartitionDatabase& db, size_t num_threads) {
  DEPMINER_TRACE_SPAN(span, "agree/maximal_classes");
  // Gather every stripped class, sort largest first (parallel), then keep
  // the ⊆-maximal ones. A class is dominated iff some class *earlier in
  // the sorted order* contains it: strict supersets are larger and so
  // sort earlier, duplicates keep only their first occurrence, and ⊆ is
  // transitive, so checking against all earlier classes (dominated ones
  // included) marks exactly the classes the incremental kept-only scan
  // would drop — but every class's check is now independent, so the scan
  // partitions across pool lanes. Each check only compares against the
  // classes sharing its first tuple, via a per-tuple index.
  std::vector<const EquivalenceClass*> all;
  for (const StrippedPartition& p : db.partitions()) {
    for (const EquivalenceClass& c : p.classes()) all.push_back(&c);
  }
  ParallelSort(all.begin(), all.end(), num_threads,
               [](const EquivalenceClass* a, const EquivalenceClass* b) {
                 if (a->size() != b->size()) return a->size() > b->size();
                 return *a < *b;  // deterministic order; groups duplicates
               });

  std::vector<std::vector<uint32_t>> with_tuple(db.num_tuples());
  for (size_t i = 0; i < all.size(); ++i) {
    for (TupleId t : *all[i]) {
      with_tuple[t].push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<char> dominated(all.size(), 0);
  ParallelFor(0, all.size(), num_threads, [&](size_t i) {
    const EquivalenceClass& c = *all[i];
    // Ascending index lists: once k ≥ i only later (no larger) classes
    // remain, none of which can dominate i.
    for (uint32_t k : with_tuple[c.front()]) {
      if (k >= i) break;
      const EquivalenceClass& cand = *all[k];
      // both sorted: subset test by inclusion scan
      if (std::includes(cand.begin(), cand.end(), c.begin(), c.end())) {
        dominated[i] = 1;
        break;
      }
    }
  });

  std::vector<EquivalenceClass> kept;
  for (size_t i = 0; i < all.size(); ++i) {
    if (!dominated[i]) kept.push_back(*all[i]);
  }
  span.SetValue(kept.size());
  return kept;
}

AgreeSetResult ComputeAgreeSetsNaive(const Relation& relation,
                                     RunContext* ctx) {
  AgreeSetResult result;
  result.num_tuples = relation.num_tuples();
  result.num_attributes = relation.num_attributes();

  std::vector<AttributeSet> distinct;
  const size_t p = relation.num_tuples();
  for (TupleId i = 0; i < p; ++i) {
    if (ctx != nullptr && ctx->limited()) {
      result.status = ctx->Check();
      if (!result.status.ok()) break;
    }
    for (TupleId j = i + 1; j < p; ++j) {
      ++result.couples_examined;
      const AttributeSet ag = relation.AgreeSetOf(i, j);
      if (ag.Empty()) {
        result.contains_empty = true;
      } else {
        distinct.push_back(ag);
      }
    }
  }
  FinalizeSets(std::move(distinct), &result);
  DEPMINER_TRACE_COUNTER("agree.couples", result.couples_examined);
  DEPMINER_TRACE_COUNTER("agree.sets", result.sets.size());
  return result;
}

AgreeSetResult ComputeAgreeSetsCouples(const StrippedPartitionDatabase& db,
                                       const AgreeSetOptions& options) {
  AgreeSetResult result;
  result.num_tuples = db.num_tuples();
  result.num_attributes = db.num_attributes();
  result.chunks_processed = 0;

  const size_t num_threads = std::max<size_t>(1, options.num_threads);
  const std::vector<EquivalenceClass> sources =
      CoupleSourceClasses(db, options.use_maximal_classes, num_threads);

  // Materialize the distinct couples (Algorithm 2 lines 4-9), possibly in
  // chunks (the paper's memory threshold).
  std::vector<std::pair<TupleId, TupleId>> couples;
  {
    DEPMINER_TRACE_SPAN(couples_span, "agree/couples");
    const CoupleEnumerator enumerator(sources, num_threads);
    couples.reserve(enumerator.size());
    enumerator.ForEach(
        [&couples](TupleId a, TupleId b) { couples.emplace_back(a, b); });
    couples_span.SetValue(couples.size());
  }
  const size_t total_couples = couples.size();
  result.couples_examined = total_couples;
  DEPMINER_TRACE_COUNTER("agree.couples", total_couples);
  DEPMINER_PROGRESS_PHASE("agree", "couples", total_couples);

  // Each attribute's class labels, computed once per run (they used to be
  // recomputed per chunk) and laid out as one contiguous row per
  // attribute so the per-chunk scans below stream through memory.
  const ClassLabelTable labels = [&] {
    DEPMINER_TRACE_SPAN(labels_span, "agree/labels");
    return ClassLabelTable::Build(db, num_threads);
  }();

  const size_t chunk_size =
      options.max_couples_per_chunk == 0
          ? std::max<size_t>(couples.size(), 1)
          : options.max_couples_per_chunk;

  // The dominant working structures: the materialized couple list, the
  // label table, one chunk's retained morsel outputs, and the in-flight
  // per-morsel scratch buffers (one grain-sized agree buffer per active
  // lane). Charged so a memory budget can veto the run before the chunk
  // loop starts.
  const size_t chunk_couples =
      std::min(chunk_size, std::max<size_t>(couples.size(), 1));
  const MorselPlan chunk_plan(0, chunk_couples, num_threads);
  result.working_bytes =
      total_couples * (sizeof(uint64_t) + sizeof(std::pair<TupleId, TupleId>)) +
      labels.bytes() + chunk_couples * sizeof(AttributeSet) +
      std::min(num_threads, std::max<size_t>(chunk_plan.count, 1)) *
          chunk_plan.grain * sizeof(AttributeSet);
  ScopedMemoryCharge memory(options.run_context);
  memory.Set(result.working_bytes);
  DEPMINER_FAULT_ALLOC("alloc/agree", options.run_context);

  RunContext* ctx = options.run_context;
  std::vector<AttributeSet> distinct;

  for (size_t begin = 0; begin < couples.size(); begin += chunk_size) {
    if (ctx != nullptr && ctx->limited()) {
      result.status = ctx->Check();
      if (!result.status.ok()) break;
    }
    const size_t end = std::min(couples.size(), begin + chunk_size);
    DEPMINER_TRACE_SPAN(chunk_span, "agree/chunk");
    chunk_span.SetValue(end - begin);

    // Lines 10-18 of the chunk, morselized: the couple range splits into
    // grain-sized morsels pulled dynamically from the pool queue. Each
    // morsel walks every label row over its sub-range (cache-friendly:
    // label rows are scanned, not rebuilt), accumulates its agree sets in
    // a private grain-sized buffer and deduplicates before publishing.
    // A morsel's output is a pure function of its sub-range — merging in
    // morsel order keeps the result bit-identical at any thread count,
    // while dynamic claiming keeps lanes busy when couples are skewed
    // (dense label rows make some morsels much heavier than others).
    const MorselPlan plan(begin, end, num_threads);
    std::vector<std::vector<AttributeSet>> morsel_sets(plan.count);
    std::atomic<bool> stopped{false};
    ParallelFor(
        0, plan.count, num_threads,
        [&](size_t m) {
          const size_t lo = plan.lo(m), hi = plan.hi(m);
          std::vector<AttributeSet> agree(hi - lo);
          StridedStopPoller poll(ctx, 4096);
          for (AttributeId a = 0; a < db.num_attributes(); ++a) {
            const uint32_t* row = labels.Row(a);
            for (size_t k = lo; k < hi; ++k) {
              if (poll.StopRequested()) {
                stopped.store(true, std::memory_order_relaxed);
                return;
              }
              const auto [t, u] = couples[k];
              if (row[t] != 0 && row[t] == row[u]) {
                agree[k - lo].Add(a);
              }
            }
          }
          DedupSets(&agree);
          morsel_sets[m] = std::move(agree);
          // Batched per morsel, never per couple: one histogram record
          // and one progress tick per grain of work.
          DEPMINER_TRACE_HISTOGRAM("agree_morsel_couples/chunked", hi - lo);
          DEPMINER_PROGRESS_TICK(hi - lo);
        },
        [&stopped] { return stopped.load(std::memory_order_relaxed); });

    if (stopped.load(std::memory_order_relaxed)) {
      // A chunk is all-or-nothing: a morsel that bailed mid-scan has
      // agree sets missing attributes, so the whole chunk is discarded
      // and the result keeps only the chunks completed before the trip —
      // the same granularity the serial path degrades at.
      result.status = TripStatus(ctx);
      break;
    }

    // Lines 19-21: fold the chunk's agree sets into ag(r). Couples
    // inside an MC class share at least the class's attribute, so no
    // agree set here is empty. Deduplicating after every chunk keeps the
    // accumulator at O(distinct sets), preserving the bounded-memory
    // property chunking exists for.
    ++result.chunks_processed;
    for (std::vector<AttributeSet>& sets : morsel_sets) {
      distinct.insert(distinct.end(), sets.begin(), sets.end());
    }
    DedupSets(&distinct);
  }

  result.contains_empty = EmptyAgreeSetPresent(db.num_tuples(), total_couples);
  FinalizeSets(std::move(distinct), &result);
  DEPMINER_TRACE_COUNTER("agree.chunks", result.chunks_processed);
  DEPMINER_TRACE_COUNTER("agree.sets", result.sets.size());
  DEPMINER_TRACE_GAUGE_MAX("agree.working_bytes", result.working_bytes);
  return result;
}

AgreeSetResult ComputeAgreeSetsIdentifiers(const StrippedPartitionDatabase& db,
                                           const AgreeSetOptions& options) {
  AgreeSetResult result;
  result.num_tuples = db.num_tuples();
  result.num_attributes = db.num_attributes();

  const size_t num_threads = std::max<size_t>(1, options.num_threads);
  RunContext* ctx = options.run_context;

  // Step 1 (lines 2-8): ec(t), the list of stripped-class identifiers
  // containing t. Built attribute by attribute, so each list is sorted by
  // attribute; identifiers pack (attribute, class index) into one word.
  std::vector<std::vector<uint64_t>> ec(db.num_tuples());
  {
    DEPMINER_TRACE_SPAN(ec_span, "agree/ec_lists");
    for (AttributeId a = 0; a < db.num_attributes(); ++a) {
      const StrippedPartition& part = db.partition(a);
      for (size_t i = 0; i < part.classes().size(); ++i) {
        const uint64_t id = (static_cast<uint64_t>(a) << 32) | i;
        for (TupleId t : part.classes()[i]) ec[t].push_back(id);
      }
    }
  }

  const std::vector<EquivalenceClass> mc =
      MaximalEquivalenceClasses(db, num_threads);

  // Step 2 (lines 9-14): ag(t, t') from ec(t) ∩ ec(t') by sorted merge.
  DEPMINER_TRACE_SPAN(intersect_span, "agree/intersect");
  const CoupleEnumerator enumerator(mc, num_threads);
  const size_t total_couples = enumerator.size();
  result.couples_examined = total_couples;
  intersect_span.SetValue(total_couples);
  DEPMINER_TRACE_COUNTER("agree.couples", total_couples);
  DEPMINER_PROGRESS_PHASE("agree", "couples", total_couples);
  result.working_bytes =
      total_couples * sizeof(uint64_t) +           // couple keys
      db.TotalMemberships() * sizeof(uint64_t) +   // ec lists
      total_couples * sizeof(AttributeSet);        // per-morsel ag buffers

  ScopedMemoryCharge memory(ctx);
  memory.Set(result.working_bytes);
  DEPMINER_FAULT_ALLOC("alloc/agree", ctx);

  // The couple-key range is morselized: grain-sized sub-ranges pulled
  // dynamically from the pool queue, each intersected into a private
  // per-morsel vector. A morsel's output depends only on its sub-range,
  // so merging in morsel order before the final sort/dedup keeps the
  // result bit-identical at any thread count — and dynamic claiming
  // absorbs the skew sorted couple keys induce (couples of one hot tuple
  // cluster into the same region of the range, with long ec lists). A
  // morsel that observes a tripped context stops at its current couple —
  // its prefix is still valid (every pushed set is a complete ag(t, t')),
  // matching the serial partial-result contract.
  const std::vector<uint64_t>& keys = enumerator.keys();
  const MorselPlan plan(0, keys.size(), num_threads);
  std::vector<std::vector<AttributeSet>> morsel_sets(plan.count);
  std::atomic<bool> stopped{false};
  ParallelFor(
      0, plan.count, num_threads,
      [&](size_t m) {
        const size_t lo = plan.lo(m), hi = plan.hi(m);
        std::vector<AttributeSet> local;
        local.reserve(hi - lo);
        StridedStopPoller poll(ctx, 4096);
        for (size_t k = lo; k < hi; ++k) {
          if (poll.StopRequested()) {
            stopped.store(true, std::memory_order_relaxed);
            break;
          }
          const uint64_t key = keys[k];
          const std::vector<uint64_t>& x = ec[static_cast<TupleId>(key >> 32)];
          const std::vector<uint64_t>& y =
              ec[static_cast<TupleId>(key & 0xFFFFFFFFu)];
          AttributeSet ag;
          size_t i = 0, j = 0;
          while (i < x.size() && j < y.size()) {
            if (x[i] == y[j]) {
              ag.Add(static_cast<AttributeId>(x[i] >> 32));
              ++i;
              ++j;
            } else if (x[i] < y[j]) {
              ++i;
            } else {
              ++j;
            }
          }
          local.push_back(ag);
        }
        morsel_sets[m] = std::move(local);
        DEPMINER_TRACE_HISTOGRAM("agree_morsel_couples/identifiers", hi - lo);
        DEPMINER_PROGRESS_TICK(hi - lo);
      },
      [&stopped] { return stopped.load(std::memory_order_relaxed); });

  if (stopped.load(std::memory_order_relaxed)) {
    result.status = TripStatus(ctx);
  }

  std::vector<AttributeSet> distinct;
  distinct.reserve(total_couples);
  for (std::vector<AttributeSet>& sets : morsel_sets) {
    distinct.insert(distinct.end(), sets.begin(), sets.end());
  }

  result.contains_empty = EmptyAgreeSetPresent(db.num_tuples(), total_couples);
  FinalizeSets(std::move(distinct), &result);
  DEPMINER_TRACE_COUNTER("agree.sets", result.sets.size());
  DEPMINER_TRACE_GAUGE_MAX("agree.working_bytes", result.working_bytes);
  return result;
}

AgreeSetResult ComputeAgreeSetsIdentifiers(const StrippedPartitionDatabase& db,
                                           RunContext* ctx) {
  AgreeSetOptions options;
  options.run_context = ctx;
  return ComputeAgreeSetsIdentifiers(db, options);
}

}  // namespace depminer
