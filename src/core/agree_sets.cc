#include "core/agree_sets.h"

#include <algorithm>

namespace depminer {

namespace {

uint64_t CoupleKey(TupleId a, TupleId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Enumerates the distinct couples of tuples inside a family of
/// equivalence classes; the same couple may co-occur in several classes
/// (overlapping maximal classes) and is reported once — "couples" is a
/// set in the paper's Algorithm 2. Deduplication is sort+unique over
/// packed (lo, hi) keys, which beats hashing at the couple counts the
/// benchmark grids produce.
class CoupleEnumerator {
 public:
  explicit CoupleEnumerator(const std::vector<EquivalenceClass>& classes) {
    size_t bound = 0;
    for (const EquivalenceClass& c : classes) {
      bound += c.size() * (c.size() - 1) / 2;
    }
    keys_.reserve(bound);
    for (const EquivalenceClass& c : classes) {
      for (size_t i = 0; i < c.size(); ++i) {
        for (size_t j = i + 1; j < c.size(); ++j) {
          keys_.push_back(CoupleKey(c[i], c[j]));
        }
      }
    }
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  }

  /// Calls fn(t, t') for every distinct couple; returns the couple count.
  template <typename Fn>
  size_t ForEach(Fn&& fn) const {
    for (const uint64_t key : keys_) {
      fn(static_cast<TupleId>(key >> 32),
         static_cast<TupleId>(key & 0xFFFFFFFFu));
    }
    return keys_.size();
  }

  /// The packed (lo, hi) couple keys, for loops that need to bail out
  /// mid-enumeration (RunContext checks).
  const std::vector<uint64_t>& keys() const { return keys_; }

  size_t size() const { return keys_.size(); }

 private:
  std::vector<uint64_t> keys_;
};

/// The class family couples are drawn from: the maximal equivalence
/// classes (the paper's MC, Lemma 1) or — for the ablation measuring what
/// MC pruning buys — every stripped class of every attribute.
std::vector<EquivalenceClass> CoupleSourceClasses(
    const StrippedPartitionDatabase& db, bool use_maximal_classes) {
  if (use_maximal_classes) return MaximalEquivalenceClasses(db);
  std::vector<EquivalenceClass> all;
  for (const StrippedPartition& p : db.partitions()) {
    all.insert(all.end(), p.classes().begin(), p.classes().end());
  }
  return all;
}

/// Deduplicates an agree-set accumulation buffer in place (word-order
/// sort + unique — cheaper than hashing at these volumes).
void DedupSets(std::vector<AttributeSet>* sets) {
  std::sort(sets->begin(), sets->end());
  sets->erase(std::unique(sets->begin(), sets->end()), sets->end());
}

void FinalizeSets(std::vector<AttributeSet>&& distinct,
                  AgreeSetResult* result) {
  DedupSets(&distinct);
  result->sets = std::move(distinct);
  SortSets(&result->sets);
}

/// ∅ ∈ ag(r) iff some pair of tuples co-occurs in *no* stripped class,
/// which is exactly: fewer distinct couples than total pairs (Lemma 1
/// covers all pairs with a non-empty agree set).
bool EmptyAgreeSetPresent(size_t num_tuples, size_t distinct_couples) {
  if (num_tuples < 2) return false;
  const uint64_t total_pairs =
      static_cast<uint64_t>(num_tuples) * (num_tuples - 1) / 2;
  return distinct_couples < total_pairs;
}

}  // namespace

std::vector<AttributeSet> AgreeSetResult::All() const {
  std::vector<AttributeSet> out = sets;
  if (contains_empty) out.insert(out.begin(), AttributeSet());
  return out;
}

const char* ToString(AgreeSetAlgorithm algorithm) {
  switch (algorithm) {
    case AgreeSetAlgorithm::kNaive:
      return "naive";
    case AgreeSetAlgorithm::kCouples:
      return "couples";       // the paper's "Dep-Miner"
    case AgreeSetAlgorithm::kIdentifiers:
      return "identifiers";   // the paper's "Dep-Miner 2"
  }
  return "unknown";
}

std::vector<EquivalenceClass> MaximalEquivalenceClasses(
    const StrippedPartitionDatabase& db) {
  // Gather every stripped class, largest first, then keep the ⊆-maximal
  // ones. Subset tests use a per-tuple index over the classes kept so far,
  // so each candidate only compares against classes sharing its first
  // tuple.
  std::vector<const EquivalenceClass*> all;
  for (const StrippedPartition& p : db.partitions()) {
    for (const EquivalenceClass& c : p.classes()) all.push_back(&c);
  }
  std::sort(all.begin(), all.end(),
            [](const EquivalenceClass* a, const EquivalenceClass* b) {
              if (a->size() != b->size()) return a->size() > b->size();
              return *a < *b;  // deterministic order; also groups duplicates
            });

  std::vector<EquivalenceClass> kept;
  std::vector<std::vector<uint32_t>> kept_with_tuple(db.num_tuples());
  for (const EquivalenceClass* c : all) {
    bool dominated = false;
    // A superset of c (kept classes are at least as large) must contain
    // c's first tuple.
    for (uint32_t k : kept_with_tuple[c->front()]) {
      const EquivalenceClass& cand = kept[k];
      // both sorted: subset test by inclusion scan
      if (std::includes(cand.begin(), cand.end(), c->begin(), c->end())) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    const uint32_t index = static_cast<uint32_t>(kept.size());
    kept.push_back(*c);
    for (TupleId t : *c) kept_with_tuple[t].push_back(index);
  }
  return kept;
}

AgreeSetResult ComputeAgreeSetsNaive(const Relation& relation,
                                     RunContext* ctx) {
  AgreeSetResult result;
  result.num_tuples = relation.num_tuples();
  result.num_attributes = relation.num_attributes();

  std::vector<AttributeSet> distinct;
  const size_t p = relation.num_tuples();
  for (TupleId i = 0; i < p; ++i) {
    if (ctx != nullptr && ctx->limited()) {
      result.status = ctx->Check();
      if (!result.status.ok()) break;
    }
    for (TupleId j = i + 1; j < p; ++j) {
      ++result.couples_examined;
      const AttributeSet ag = relation.AgreeSetOf(i, j);
      if (ag.Empty()) {
        result.contains_empty = true;
      } else {
        distinct.push_back(ag);
      }
    }
  }
  FinalizeSets(std::move(distinct), &result);
  return result;
}

AgreeSetResult ComputeAgreeSetsCouples(const StrippedPartitionDatabase& db,
                                       const AgreeSetOptions& options) {
  AgreeSetResult result;
  result.num_tuples = db.num_tuples();
  result.num_attributes = db.num_attributes();
  result.chunks_processed = 0;

  const std::vector<EquivalenceClass> sources =
      CoupleSourceClasses(db, options.use_maximal_classes);

  // Materialize the distinct couples (Algorithm 2 lines 4-9), possibly in
  // chunks (the paper's memory threshold).
  std::vector<std::pair<TupleId, TupleId>> couples;
  const CoupleEnumerator enumerator(sources);
  couples.reserve(enumerator.size());
  const size_t total_couples = enumerator.ForEach(
      [&couples](TupleId a, TupleId b) { couples.emplace_back(a, b); });
  result.couples_examined = total_couples;
  result.working_bytes =
      total_couples * (sizeof(uint64_t) + sizeof(std::pair<TupleId, TupleId>));

  // The materialized couple list is this algorithm's dominant working
  // structure; charge it so a memory budget can veto the run before the
  // chunk loop touches every partition.
  ScopedMemoryCharge memory(options.run_context);
  memory.Set(result.working_bytes);

  std::vector<AttributeSet> distinct;

  // class_of[t]: 1-based id of t's class within the current partition.
  std::vector<uint32_t> class_of(db.num_tuples(), 0);
  std::vector<AttributeSet> agree;

  const size_t chunk_size =
      options.max_couples_per_chunk == 0
          ? std::max<size_t>(couples.size(), 1)
          : options.max_couples_per_chunk;
  for (size_t begin = 0; begin < couples.size(); begin += chunk_size) {
    if (options.run_context != nullptr && options.run_context->limited()) {
      result.status = options.run_context->Check();
      if (!result.status.ok()) break;
    }
    const size_t end = std::min(couples.size(), begin + chunk_size);
    ++result.chunks_processed;
    agree.assign(end - begin, AttributeSet());

    // Lines 10-18: one scan over every stripped partition per chunk. The
    // membership test "t ∈ c and t' ∈ c" is realized by labelling each
    // tuple with its class id and comparing labels.
    for (AttributeId a = 0; a < db.num_attributes(); ++a) {
      const StrippedPartition& part = db.partition(a);
      uint32_t id = 1;
      for (const EquivalenceClass& c : part.classes()) {
        for (TupleId t : c) class_of[t] = id;
        ++id;
      }
      for (size_t k = begin; k < end; ++k) {
        const auto [t, u] = couples[k];
        if (class_of[t] != 0 && class_of[t] == class_of[u]) {
          agree[k - begin].Add(a);
        }
      }
      for (const EquivalenceClass& c : part.classes()) {
        for (TupleId t : c) class_of[t] = 0;
      }
    }

    // Lines 19-21: fold the chunk's agree sets into ag(r). Couples
    // inside an MC class share at least the class's attribute, so no
    // agree set here is empty. Deduplicating after every chunk keeps the
    // accumulator at O(distinct sets), preserving the bounded-memory
    // property chunking exists for.
    distinct.insert(distinct.end(), agree.begin(), agree.end());
    DedupSets(&distinct);
  }

  result.contains_empty = EmptyAgreeSetPresent(db.num_tuples(), total_couples);
  FinalizeSets(std::move(distinct), &result);
  return result;
}

AgreeSetResult ComputeAgreeSetsIdentifiers(const StrippedPartitionDatabase& db,
                                           RunContext* ctx) {
  AgreeSetResult result;
  result.num_tuples = db.num_tuples();
  result.num_attributes = db.num_attributes();

  // Step 1 (lines 2-8): ec(t), the list of stripped-class identifiers
  // containing t. Built attribute by attribute, so each list is sorted by
  // attribute; identifiers pack (attribute, class index) into one word.
  std::vector<std::vector<uint64_t>> ec(db.num_tuples());
  for (AttributeId a = 0; a < db.num_attributes(); ++a) {
    const StrippedPartition& part = db.partition(a);
    for (size_t i = 0; i < part.classes().size(); ++i) {
      const uint64_t id = (static_cast<uint64_t>(a) << 32) | i;
      for (TupleId t : part.classes()[i]) ec[t].push_back(id);
    }
  }

  const std::vector<EquivalenceClass> mc = MaximalEquivalenceClasses(db);

  // Step 2 (lines 9-14): ag(t, t') from ec(t) ∩ ec(t') by sorted merge.
  const CoupleEnumerator enumerator(mc);
  const size_t total_couples = enumerator.size();
  result.couples_examined = total_couples;
  result.working_bytes =
      total_couples * sizeof(uint64_t) +
      db.TotalMemberships() * sizeof(uint64_t);  // couple keys + ec lists

  ScopedMemoryCharge memory(ctx);
  memory.Set(result.working_bytes);

  std::vector<AttributeSet> distinct;
  distinct.reserve(enumerator.size());
  constexpr size_t kCheckEvery = 4096;  // couples between RunContext checks
  for (size_t k = 0; k < enumerator.keys().size(); ++k) {
    if (k % kCheckEvery == 0 && ctx != nullptr && ctx->limited()) {
      result.status = ctx->Check();
      if (!result.status.ok()) break;
    }
    const uint64_t key = enumerator.keys()[k];
    const std::vector<uint64_t>& x = ec[static_cast<TupleId>(key >> 32)];
    const std::vector<uint64_t>& y = ec[static_cast<TupleId>(key & 0xFFFFFFFFu)];
    AttributeSet ag;
    size_t i = 0, j = 0;
    while (i < x.size() && j < y.size()) {
      if (x[i] == y[j]) {
        ag.Add(static_cast<AttributeId>(x[i] >> 32));
        ++i;
        ++j;
      } else if (x[i] < y[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    distinct.push_back(ag);
  }

  result.contains_empty = EmptyAgreeSetPresent(db.num_tuples(), total_couples);
  FinalizeSets(std::move(distinct), &result);
  return result;
}

}  // namespace depminer
