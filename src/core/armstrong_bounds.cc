#include "core/armstrong_bounds.h"

namespace depminer {

size_t ArmstrongSizeLowerBound(size_t num_generators) {
  if (num_generators == 0) return 1;
  // Smallest p with p(p-1)/2 >= g. Integer search from the real solution
  // of p² − p − 2g = 0 (kept exact; g is small in practice).
  size_t p = 2;
  while (p * (p - 1) / 2 < num_generators) ++p;
  return p;
}

}  // namespace depminer
