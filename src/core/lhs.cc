#include "core/lhs.h"

#include <algorithm>

#include "common/parallel.h"

namespace depminer {

LhsResult ComputeLhs(const MaxSetResult& max_sets, size_t num_threads) {
  LhsResult result;
  const size_t n = max_sets.num_attributes;
  result.num_attributes = n;
  result.lhs.resize(n);

  std::vector<LevelwiseStats> per_attr_stats(n);
  ParallelFor(0, n, num_threads, [&](size_t a) {
    Hypergraph graph(n, max_sets.cmax_sets[a]);
    result.lhs[a] = LevelwiseMinimalTransversals(graph, &per_attr_stats[a]);
    SortSets(&result.lhs[a]);
  });
  for (const LevelwiseStats& stats : per_attr_stats) {
    result.stats.levels = std::max(result.stats.levels, stats.levels);
    result.stats.candidates_generated += stats.candidates_generated;
    result.stats.transversals_found += stats.transversals_found;
  }
  return result;
}

FdSet OutputFds(const LhsResult& lhs) {
  FdSet fds(lhs.num_attributes);
  for (AttributeId a = 0; a < lhs.num_attributes; ++a) {
    for (const AttributeSet& x : lhs.lhs[a]) {
      if (x == AttributeSet::Single(a)) continue;  // trivial A -> A
      fds.Add(x, a);
    }
  }
  fds.Normalize();
  return fds;
}

}  // namespace depminer
