#include "core/lhs.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/trace.h"
#include "fault/fault.h"

namespace depminer {

LhsResult ComputeLhs(const MaxSetResult& max_sets, size_t num_threads,
                     RunContext* ctx, size_t max_lhs_arity) {
  LhsResult result;
  const size_t n = max_sets.num_attributes;
  result.num_attributes = n;
  result.lhs.resize(n);
  result.attribute_complete.assign(n, false);

  // done[a] is written only by the lane owning index a; the pooled
  // ParallelFor's completion wait publishes it. vector<bool> is not
  // byte-addressable, hence char.
  std::vector<char> done(n, 0);
  std::vector<LevelwiseStats> per_attr_stats(n);
  ParallelFor(
      0, n, num_threads,
      [&](size_t a) {
        // One alloc poll per attribute: a firing fault models attribute
        // a's transversal expansion failing to allocate.
        DEPMINER_FAULT_ALLOC("alloc/lhs", ctx);
        DEPMINER_TRACE_SPAN(attr_span, "lhs/attribute");
        Hypergraph graph(n, max_sets.cmax_sets[a]);
        std::vector<AttributeSet> tr = LevelwiseMinimalTransversals(
            graph, &per_attr_stats[a], ctx, max_lhs_arity);
        attr_span.SetValue(per_attr_stats[a].candidates_generated);
        if (!per_attr_stats[a].complete) return;  // partial Tr is unusable
        SortSets(&tr);
        result.lhs[a] = std::move(tr);
        done[a] = 1;
      },
      [ctx] { return ctx != nullptr && ctx->StopRequested(); });

  bool all_done = true;
  for (size_t a = 0; a < n; ++a) {
    result.attribute_complete[a] = done[a] != 0;
    all_done = all_done && result.attribute_complete[a];
  }
  for (const LevelwiseStats& stats : per_attr_stats) {
    result.stats.levels = std::max(result.stats.levels, stats.levels);
    result.stats.candidates_generated += stats.candidates_generated;
    result.stats.transversals_found += stats.transversals_found;
    result.stats.candidates_pruned += stats.candidates_pruned;
  }
  DEPMINER_TRACE_COUNTER("lhs.transversal_candidates",
                         result.stats.candidates_generated);
  DEPMINER_TRACE_COUNTER("lhs.transversals", result.stats.transversals_found);
  DEPMINER_TRACE_COUNTER("lhs.candidates_pruned",
                         result.stats.candidates_pruned);
  result.stats.complete = all_done;
  if (!all_done) {
    result.status = ctx != nullptr && !ctx->Check().ok()
                        ? ctx->Check()
                        : Status::Cancelled("LEFT_HAND_SIDE interrupted");
  }
  return result;
}

FdSet OutputFds(const LhsResult& lhs) {
  FdSet fds(lhs.num_attributes);
  for (AttributeId a = 0; a < lhs.num_attributes; ++a) {
    for (const AttributeSet& x : lhs.lhs[a]) {
      if (x == AttributeSet::Single(a)) continue;  // trivial A -> A
      fds.Add(x, a);
    }
  }
  fds.Normalize();
  return fds;
}

}  // namespace depminer
