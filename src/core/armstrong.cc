#include "core/armstrong.h"

#include <algorithm>

#include "common/trace.h"
#include "relation/relation_builder.h"

namespace depminer {

namespace {

/// The closure of X in CL(dep(r)): the intersection of every maximal set
/// containing X, defaulting to R (the empty intersection). Correct because
/// MAX(dep(r)) = GEN(dep(r)) is the family of meet-irreducible closed sets.
AttributeSet ClosureViaMaxSets(const AttributeSet& x, size_t n,
                               const std::vector<AttributeSet>& max_sets) {
  AttributeSet closure = AttributeSet::Universe(n);
  for (const AttributeSet& m : max_sets) {
    if (x.IsSubsetOf(m)) closure = closure.Intersect(m);
  }
  return closure;
}

}  // namespace

Result<Relation> BuildSyntheticArmstrong(
    const Schema& schema, const std::vector<AttributeSet>& max_sets) {
  const size_t n = schema.num_attributes();
  if (n == 0) {
    return Status::InvalidArgument(
        "synthetic Armstrong construction needs a non-empty schema");
  }
  const AttributeSet universe = AttributeSet::Universe(n);
  for (const AttributeSet& m : max_sets) {
    if (!m.IsSubsetOf(universe)) {
      return Status::InvalidArgument(
          "max set " + m.ToString() + " names attributes outside the " +
          std::to_string(n) + "-attribute schema");
    }
  }
  RelationBuilder builder(schema);

  // C = {X_0 = R} ∪ MAX(dep(r)); tuple i gets 0 on X_i and i elsewhere
  // (Equation 1).
  std::vector<std::string> row(n, "0");
  DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  for (size_t i = 0; i < max_sets.size(); ++i) {
    for (AttributeId a = 0; a < n; ++a) {
      row[a] = max_sets[i].Contains(a) ? "0" : std::to_string(i + 1);
    }
    DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

Status RealWorldArmstrongExists(const Relation& relation,
                                const std::vector<AttributeSet>& max_sets) {
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    size_t excluding = 0;  // |{X ∈ MAX(dep(r)) : A ∉ X}|
    for (const AttributeSet& m : max_sets) {
      if (!m.Contains(a)) ++excluding;
    }
    if (relation.DistinctCount(a) < excluding + 1) {
      return Status::FailedPrecondition(
          "attribute '" + relation.schema().name(a) + "' has " +
          std::to_string(relation.DistinctCount(a)) +
          " distinct values; needs " + std::to_string(excluding + 1) +
          " (Proposition 1)");
    }
  }
  return Status::OK();
}

Result<Relation> BuildRealWorldArmstrong(
    const Relation& relation, const std::vector<AttributeSet>& max_sets,
    RunContext* ctx) {
  std::vector<std::vector<std::string>> samples;
  std::vector<size_t> counts;
  samples.reserve(relation.num_attributes());
  counts.reserve(relation.num_attributes());
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    samples.push_back(relation.Dictionary(a));
    counts.push_back(relation.DistinctCount(a));
  }
  return BuildRealWorldArmstrongFromSamples(relation.schema(), samples,
                                            counts, max_sets, ctx);
}

Result<Relation> BuildRealWorldArmstrongFromSamples(
    const Schema& schema,
    const std::vector<std::vector<std::string>>& value_samples,
    const std::vector<size_t>& distinct_counts,
    const std::vector<AttributeSet>& max_sets, RunContext* ctx) {
  DEPMINER_TRACE_SPAN(span, "armstrong/build");
  span.SetValue(max_sets.size());
  const size_t n = schema.num_attributes();
  if (value_samples.size() != n || distinct_counts.size() != n) {
    return Status::InvalidArgument("samples/counts arity mismatch");
  }

  // Proposition 1, judged on the true distinct counts.
  for (AttributeId a = 0; a < n; ++a) {
    size_t excluding = 0;
    for (const AttributeSet& m : max_sets) {
      if (!m.Contains(a)) ++excluding;
    }
    if (distinct_counts[a] < excluding + 1) {
      return Status::FailedPrecondition(
          "attribute '" + schema.name(a) + "' has " +
          std::to_string(distinct_counts[a]) + " distinct values; needs " +
          std::to_string(excluding + 1) + " (Proposition 1)");
    }
    if (value_samples[a].size() < std::min(distinct_counts[a], excluding + 1)) {
      return Status::CapacityExceeded(
          "attribute '" + schema.name(a) + "': value sample holds " +
          std::to_string(value_samples[a].size()) + " values, construction "
          "needs " + std::to_string(excluding + 1) +
          " — raise StreamingOptions::value_sample_size");
    }
  }

  RelationBuilder builder(schema);

  // Equation 2, with one refinement: where the paper indexes the
  // replacement value v_{A,i} by the tuple's global index i, we index by
  // the *rank* of i among the tuples that disagree with t_0 on A. The
  // agree-set structure is identical — t_i[A] = t_0[A] iff A ∈ X_i, and
  // distinct disagreeing tuples get distinct values — but rank indexing
  // needs exactly the |{X : A ∉ X}| + 1 distinct values Proposition 1
  // guarantees, whereas global indexing can demand more than the initial
  // relation has.
  std::vector<size_t> next_value(n, 1);

  std::vector<std::string> row(n);
  for (AttributeId a = 0; a < n; ++a) row[a] = value_samples[a][0];
  DEPMINER_RETURN_NOT_OK(builder.AddRow(row));

  for (const AttributeSet& x : max_sets) {
    DEPMINER_CHECK_RUN(ctx);
    for (AttributeId a = 0; a < n; ++a) {
      const std::vector<std::string>& values = value_samples[a];
      row[a] = x.Contains(a) ? values[0] : values[next_value[a]++];
    }
    DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

bool IsArmstrongFor(const Relation& candidate,
                    const std::vector<AttributeSet>& max_sets) {
  const size_t n = candidate.num_attributes();
  const size_t p = candidate.num_tuples();

  // ag(candidate), by the quadratic definition — Armstrong relations are
  // tiny.
  std::vector<AttributeSet> agree;
  for (TupleId i = 0; i < p; ++i) {
    for (TupleId j = i + 1; j < p; ++j) {
      agree.push_back(candidate.AgreeSetOf(i, j));
    }
  }

  // GEN(F) ⊆ ag(candidate): every maximal set must be realized by a pair.
  for (const AttributeSet& m : max_sets) {
    bool found = false;
    for (const AttributeSet& s : agree) {
      if (s == m) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  // ag(candidate) ⊆ CL(F): every agree set must be closed.
  for (const AttributeSet& s : agree) {
    if (s != ClosureViaMaxSets(s, n, max_sets)) return false;
  }
  return true;
}

}  // namespace depminer
