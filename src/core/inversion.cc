#include "core/inversion.h"

#include "hypergraph/berge_transversals.h"
#include "hypergraph/hypergraph.h"

namespace depminer {

MaxSetResult MaxSetsFromFds(const FdSet& fds) {
  const size_t n = fds.num_attributes();
  MaxSetResult result;
  result.num_attributes = n;
  result.max_sets.resize(n);
  result.cmax_sets.resize(n);

  // Reconstruct the lhs families per attribute.
  std::vector<std::vector<AttributeSet>> lhs(n);
  std::vector<bool> constant(n, false);
  for (const FunctionalDependency& fd : fds.fds()) {
    if (fd.lhs.Empty()) {
      constant[fd.rhs] = true;
    } else {
      lhs[fd.rhs].push_back(fd.lhs);
    }
  }

  const AttributeSet universe = AttributeSet::Universe(n);
  for (AttributeId a = 0; a < n; ++a) {
    if (constant[a]) {
      // lhs(A) = {∅}: nothing can be transversal to the empty edge, so
      // cmax(A) = Tr({∅}) = ∅ — A participates in no maximal set.
      continue;
    }
    // The trivial lhs {A} is part of lhs(dep(r), A) whenever cmax(A) is
    // non-empty; FD output removed it, so add it back before inverting.
    //
    // The inversion uses Berge's method rather than the paper's levelwise
    // Algorithm 5: lhs edges are small and numerous and their minimal
    // transversals (the cmax sets) are *wide*, so a levelwise search
    // would crawl through C(n, k) candidate levels before reaching them,
    // while Berge's intermediate families stay near the (small) answer.
    std::vector<AttributeSet> family = lhs[a];
    family.push_back(AttributeSet::Single(a));
    const Hypergraph lhs_graph(n, std::move(family));
    result.cmax_sets[a] = BergeMinimalTransversals(lhs_graph);
    SortSets(&result.cmax_sets[a]);
    result.max_sets[a].reserve(result.cmax_sets[a].size());
    for (const AttributeSet& e : result.cmax_sets[a]) {
      result.max_sets[a].push_back(universe.Minus(e));
    }
    SortSets(&result.max_sets[a]);
  }
  return result;
}

std::vector<AttributeSet> AllMaxSetsFromFds(const FdSet& fds) {
  return MaxSetsFromFds(fds).AllMaxSets();
}

}  // namespace depminer
