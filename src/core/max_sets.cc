#include "core/max_sets.h"

namespace depminer {

std::vector<AttributeSet> MaxSetResult::AllMaxSets() const {
  // MAX(dep(r)) is the plain (deduplicated) union of the per-attribute
  // families: across attributes one max set may contain another, and both
  // belong to MAX(dep(r)).
  std::vector<AttributeSet> out;
  for (const auto& per_attr : max_sets) {
    out.insert(out.end(), per_attr.begin(), per_attr.end());
  }
  SortSets(&out);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

MaxSetResult ComputeMaxSets(const AgreeSetResult& agree, RunContext* ctx) {
  MaxSetResult result;
  const size_t n = agree.num_attributes;
  result.num_attributes = n;
  result.max_sets.resize(n);
  result.cmax_sets.resize(n);

  const AttributeSet universe = AttributeSet::Universe(n);

  for (AttributeId a = 0; a < n; ++a) {
    if (ctx != nullptr && ctx->StopRequested()) break;
    // Lemma 3: max(dep(r), A) = Max⊆ {X ∈ ag(r) : A ∉ X}.
    std::vector<AttributeSet> candidates;
    for (const AttributeSet& x : agree.sets) {
      if (!x.Contains(a)) candidates.push_back(x);
    }
    if (candidates.empty()) {
      // Only the empty agree set (if present) avoids A: then ∅ is the
      // largest set not determining A. Without it, every pair of tuples
      // agrees on A and max(dep(r), A) is empty (∅ → A holds).
      if (agree.contains_empty) candidates.push_back(AttributeSet());
      result.max_sets[a] = std::move(candidates);
    } else {
      result.max_sets[a] = MaximalSets(std::move(candidates));
    }
    SortSets(&result.max_sets[a]);

    // Algorithm 4 lines 4-9: complements.
    std::vector<AttributeSet>& cmax = result.cmax_sets[a];
    cmax.reserve(result.max_sets[a].size());
    for (const AttributeSet& x : result.max_sets[a]) {
      cmax.push_back(universe.Minus(x));
    }
    SortSets(&cmax);
  }
  return result;
}

}  // namespace depminer
