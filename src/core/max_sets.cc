#include "core/max_sets.h"

#include <algorithm>
#include <unordered_set>

#include "common/dominance.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "fault/fault.h"

namespace depminer {

std::vector<AttributeSet> MaxSetResult::AllMaxSets() const {
  // MAX(dep(r)) is the plain (deduplicated) union of the per-attribute
  // families: across attributes one max set may contain another, and both
  // belong to MAX(dep(r)). The families arrive individually sorted, so
  // duplicates are filtered by hash on the way in and only the (much
  // smaller) distinct union pays the canonical sort.
  size_t total = 0;
  for (const auto& per_attr : max_sets) total += per_attr.size();
  std::unordered_set<AttributeSet, AttributeSetHash> seen;
  seen.reserve(total);
  std::vector<AttributeSet> out;
  out.reserve(total);
  for (const auto& per_attr : max_sets) {
    for (const AttributeSet& x : per_attr) {
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  SortSets(&out);
  return out;
}

MaxSetResult ComputeMaxSets(const AgreeSetResult& agree, size_t num_threads,
                            RunContext* ctx) {
  MaxSetResult result;
  const size_t n = agree.num_attributes;
  result.num_attributes = n;
  result.max_sets.resize(n);
  result.cmax_sets.resize(n);
  if (n == 0) return result;

  const AttributeSet universe = AttributeSet::Universe(n);
  const size_t lanes = std::max<size_t>(1, std::min(num_threads, n));

  // The single shared pass: sort ag(r) by descending cardinality once
  // (stably, on the canonical agree-set order — deterministic) and build
  // one global inverted index over it. Every per-attribute family below
  // is derived read-only against this index, so nothing is re-filtered
  // or re-indexed per attribute.
  std::vector<AttributeSet> family = agree.sets;
  const DominanceIndex index = [&] {
    DEPMINER_TRACE_SPAN(index_span, "cmax/index");
    index_span.SetValue(family.size());
    std::stable_sort(family.begin(), family.end(),
                     [](const AttributeSet& a, const AttributeSet& b) {
                       return a.Count() > b.Count();
                     });
    return DominanceIndex(family, DominanceIndex::Order::kNonIncreasing, n);
  }();

  // The stage's working set — shared family, postings, per-lane scratch
  // bitmaps — charged before any lane starts, so a too-small budget
  // vetoes the stage deterministically instead of mid-flight.
  const size_t words = index.words_per_bitmap();
  result.working_bytes = family.size() * sizeof(AttributeSet) +
                         index.bytes() + lanes * words * sizeof(uint64_t);
  ScopedMemoryCharge memory(ctx);
  memory.Set(result.working_bytes);
  DEPMINER_FAULT_ALLOC("alloc/cmax", ctx);

  std::vector<std::vector<uint64_t>> scratch(
      lanes, std::vector<uint64_t>(std::max<size_t>(words, 1)));
  // Per-lane probe tallies, summed into the session counter after the
  // join (one counter call per stage, not per probe).
  std::vector<uint64_t> lane_probes(lanes, 0);

  DEPMINER_TRACE_SPAN(derive_span, "cmax/derive");
  derive_span.SetValue(n);
  ParallelForSlotted(
      0, n, lanes,
      [&](size_t slot, size_t a_index) {
        const AttributeId a = static_cast<AttributeId>(a_index);
        std::vector<AttributeSet>& max = result.max_sets[a_index];
        // Lemma 3: max(dep(r), A) = Max⊆ {X ∈ ag(r) : A ∉ X}. The ids
        // containing A are excluded both as candidates and as dominators
        // via A's own posting row.
        const uint64_t* avoid = index.Postings(a);
        StridedStopPoller poll(ctx, 256);
        for (size_t id = 0; id < family.size(); ++id) {
          if (poll.StopRequested()) {
            // A partially derived family is not max(dep(r), A); drop it
            // (same contract as the serial loop's skipped attributes).
            max.clear();
            return;
          }
          const AttributeSet& x = family[id];
          if (x.Contains(a)) continue;
          ++lane_probes[slot];
          if (!index.HasProperSupersetOf(x, avoid, scratch[slot].data())) {
            max.push_back(x);
          }
        }
        if (max.empty() && agree.contains_empty) {
          // Only the empty agree set (if present) avoids A: then ∅ is the
          // largest set not determining A. Without it, every pair of
          // tuples agrees on A and max(dep(r), A) is empty (∅ → A holds).
          max.push_back(AttributeSet());
        }
        SortSets(&max);

        // Algorithm 4 lines 4-9: complements.
        std::vector<AttributeSet>& cmax = result.cmax_sets[a_index];
        cmax.reserve(max.size());
        for (const AttributeSet& x : max) {
          cmax.push_back(universe.Minus(x));
        }
        SortSets(&cmax);
      },
      [ctx] { return ctx != nullptr && ctx->StopRequested(); });

  uint64_t probes = 0;
  for (const uint64_t p : lane_probes) probes += p;
  DEPMINER_TRACE_COUNTER("cmax.dominance_probes", probes);
  DEPMINER_TRACE_GAUGE_MAX("cmax.working_bytes", result.working_bytes);

  // Capture the verdict while the stage's charge is still held: once
  // `memory` releases it, a pure budget trip is no longer observable
  // from the context, yet the dropped families above make this result
  // unusable. Deadline/cancellation trips are sticky, and a budget trip
  // stays visible here because our own charge is what trips it.
  if (ctx != nullptr && ctx->limited()) result.status = ctx->Check();
  return result;
}

MaxSetResult ComputeMaxSetsNaive(const AgreeSetResult& agree,
                                 RunContext* ctx) {
  MaxSetResult result;
  const size_t n = agree.num_attributes;
  result.num_attributes = n;
  result.max_sets.resize(n);
  result.cmax_sets.resize(n);

  const AttributeSet universe = AttributeSet::Universe(n);

  for (AttributeId a = 0; a < n; ++a) {
    if (ctx != nullptr && ctx->limited()) {
      result.status = ctx->Check();
      if (!result.status.ok()) break;
    }
    std::vector<AttributeSet> candidates;
    for (const AttributeSet& x : agree.sets) {
      if (!x.Contains(a)) candidates.push_back(x);
    }
    if (candidates.empty()) {
      if (agree.contains_empty) candidates.push_back(AttributeSet());
      result.max_sets[a] = std::move(candidates);
    } else {
      result.max_sets[a] = MaximalSetsNaive(std::move(candidates));
    }
    SortSets(&result.max_sets[a]);

    std::vector<AttributeSet>& cmax = result.cmax_sets[a];
    cmax.reserve(result.max_sets[a].size());
    for (const AttributeSet& x : result.max_sets[a]) {
      cmax.push_back(universe.Minus(x));
    }
    SortSets(&cmax);
  }
  return result;
}

}  // namespace depminer
