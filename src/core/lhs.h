#pragma once

#include <vector>

#include "core/max_sets.h"
#include "fd/fd_set.h"
#include "hypergraph/levelwise_transversals.h"

namespace depminer {

/// Left-hand sides of minimal FDs, per attribute: lhs(dep(r), A) =
/// Tr(cmax(dep(r), A)) (paper §2 and Algorithm 5).
///
/// Note: like the paper's, the family includes the trivial lhs {A} itself
/// whenever {A} is a transversal (e.g. lhs(dep(r), A) = {A, BC, CD} in the
/// worked example); FD output filters it.
struct LhsResult {
  size_t num_attributes = 0;
  std::vector<std::vector<AttributeSet>> lhs;  ///< lhs[A], sorted
  LevelwiseStats stats;                        ///< summed over attributes
  /// attribute_complete[A] is true iff A's transversal search finished.
  /// When a RunContext trips, completed attributes keep their full
  /// lhs[A] (graceful degradation — those FDs are final); interrupted or
  /// unstarted attributes have lhs[A] empty and the flag false.
  std::vector<bool> attribute_complete;
  /// OK for a full run; the tripping RunContext status otherwise.
  Status status;
};

/// Runs Algorithm 5 (LEFT_HAND_SIDE) on every attribute's cmax
/// hypergraph. Attributes are independent; `num_threads` > 1 distributes
/// them across threads with identical output. `ctx` is checked per
/// transversal level within each attribute and stops the distribution of
/// further attributes once tripped.
///
/// `max_lhs_arity` (0 = unbounded) caps every attribute's transversal
/// search at that level, pruning deeper candidates before generation
/// (see LevelwiseMinimalTransversals); lhs[A] is then exactly the
/// unbounded family filtered to |X| ≤ max_lhs_arity, and
/// `stats.candidates_pruned` counts what the cap kept un-generated.
LhsResult ComputeLhs(const MaxSetResult& max_sets, size_t num_threads = 1,
                     RunContext* ctx = nullptr, size_t max_lhs_arity = 0);

/// Algorithm 6 (FD_OUTPUT): the minimal non-trivial FDs — every X → A with
/// X ∈ lhs(dep(r), A) and X ≠ {A}. FDs with an empty lhs (constant
/// attributes) are included; they hold and are minimal.
FdSet OutputFds(const LhsResult& lhs);

}  // namespace depminer
