#pragma once

#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "common/run_context.h"
#include "partition/partition_database.h"
#include "relation/relation.h"

namespace depminer {

/// The result of an agree-set computation.
///
/// `sets` holds the distinct non-empty agree sets of the relation.
/// `contains_empty` records whether ∅ ∈ ag(r), i.e. whether some pair of
/// tuples disagrees on every attribute. The couple-based algorithms never
/// *enumerate* such pairs (they share no stripped equivalence class), but
/// their existence is detectable by comparing the number of distinct
/// couples against C(|r|, 2); the empty agree set matters for maximal-set
/// derivation when an attribute has no other agreeing pair.
struct AgreeSetResult {
  std::vector<AttributeSet> sets;
  bool contains_empty = false;
  size_t num_tuples = 0;
  size_t num_attributes = 0;

  /// Statistics for the bench harness.
  size_t couples_examined = 0;
  size_t chunks_processed = 1;
  /// High-water estimate (bytes) of the algorithm's dominant working
  /// structure — the materialized couple list (Algorithm 2, bounded by
  /// the chunk threshold) or the couple keys plus ec(t) identifier lists
  /// (Algorithm 3). The memory counterpart of TANE's
  /// `peak_partition_bytes`; see EXPERIMENTS.md.
  size_t working_bytes = 0;

  /// OK for a completed computation. When the governing `RunContext`
  /// trips mid-phase (deadline, cancellation, memory budget) the
  /// algorithms stop at the next chunk/couple-batch boundary and return
  /// here with the tripping status; `sets` then holds only the agree sets
  /// of the couples processed so far.
  Status status;

  /// All agree sets including ∅ if present — the paper's ag(r).
  std::vector<AttributeSet> All() const;
};

/// Options for the couple-based Algorithm 2 and the identifier-based
/// Algorithm 3.
struct AgreeSetOptions {
  /// Maximum number of couples materialized at once (the paper's memory
  /// threshold, §3.1: "computing agree sets as soon as a fixed number of
  /// couples was generated"). 0 means unlimited. Algorithm 2 only.
  size_t max_couples_per_chunk = 0;
  /// Ablation switch: when false, couples are enumerated from *every*
  /// stripped equivalence class rather than only the maximal ones,
  /// quantifying the benefit of the paper's MC pruning. Results are
  /// identical (couples are deduplicated); only work changes.
  bool use_maximal_classes = true;
  /// Pool lanes for couple enumeration, dominance filtering and the
  /// per-couple agree-set loops. 1 = serial. Results are bit-identical
  /// for any value: couples are split into deterministic contiguous
  /// ranges and per-lane accumulators are merged in slot order before
  /// the final sort/dedup.
  size_t num_threads = 1;
  /// Optional resource governance: checked once per chunk (Algorithm 2)
  /// or every few thousand couples per lane (Algorithm 3); the
  /// materialized couple list, the class-label table, the ec lists and
  /// the per-lane accumulation buffers are charged against its memory
  /// budget.
  RunContext* run_context = nullptr;
};

/// Maximal equivalence classes MC = Max⊆{c ∈ π̂_A : π̂_A ∈ r̂} (paper §3.1).
/// Couples of tuples that can have a non-empty agree set live inside these
/// classes (Lemma 1). Dominance filtering runs as a parallel sort plus
/// per-class subset checks partitioned over `num_threads` pool lanes
/// (identical output for any value).
std::vector<EquivalenceClass> MaximalEquivalenceClasses(
    const StrippedPartitionDatabase& db, size_t num_threads = 1);

/// Reference implementation: ag(ti, tj) for every pair of tuples —
/// O(n·p²). Used as an oracle and as the "naive algorithm" baseline the
/// paper argues against. `ctx` is checked once per outer tuple.
AgreeSetResult ComputeAgreeSetsNaive(const Relation& relation,
                                     RunContext* ctx = nullptr);

/// Paper Algorithm 2 (AGREE_SET): generate the couples inside maximal
/// equivalence classes, then scan each stripped partition once, adding
/// attribute A to ag(t, t') for every couple found together in one of
/// π̂_A's classes. Processes couples in bounded chunks per
/// `options.max_couples_per_chunk`.
AgreeSetResult ComputeAgreeSetsCouples(const StrippedPartitionDatabase& db,
                                       const AgreeSetOptions& options = {});

/// Paper Algorithm 3 (AGREE_SET 2): build ec(t) = identifiers of the
/// stripped classes containing t, then ag(t, t') = attributes of
/// ec(t) ∩ ec(t') (Lemma 2). More efficient when couples are numerous.
/// The couple-key range is split across `options.num_threads` lanes with
/// per-lane result vectors merged in slot order (chunking options do not
/// apply).
AgreeSetResult ComputeAgreeSetsIdentifiers(const StrippedPartitionDatabase& db,
                                           const AgreeSetOptions& options);

/// Convenience overload governing the run with just a context (serial).
AgreeSetResult ComputeAgreeSetsIdentifiers(const StrippedPartitionDatabase& db,
                                           RunContext* ctx = nullptr);

/// Selects which agree-set algorithm a `DepMiner` run uses.
enum class AgreeSetAlgorithm {
  kNaive,        ///< all-pairs reference (small inputs only)
  kCouples,      ///< Algorithm 2 — the evaluation's "Dep-Miner"
  kIdentifiers,  ///< Algorithm 3 — the evaluation's "Dep-Miner 2"
};

const char* ToString(AgreeSetAlgorithm algorithm);

}  // namespace depminer
