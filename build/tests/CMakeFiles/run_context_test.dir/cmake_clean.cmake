file(REMOVE_RECURSE
  "CMakeFiles/run_context_test.dir/run_context_test.cc.o"
  "CMakeFiles/run_context_test.dir/run_context_test.cc.o.d"
  "run_context_test"
  "run_context_test.pdb"
  "run_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
