# Empty dependencies file for run_context_test.
# This may be replaced when dependencies are built.
