file(REMOVE_RECURSE
  "CMakeFiles/wide_schema_test.dir/wide_schema_test.cc.o"
  "CMakeFiles/wide_schema_test.dir/wide_schema_test.cc.o.d"
  "wide_schema_test"
  "wide_schema_test.pdb"
  "wide_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
