# Empty compiler generated dependencies file for wide_schema_test.
# This may be replaced when dependencies are built.
