# Empty dependencies file for repair_fk_test.
# This may be replaced when dependencies are built.
