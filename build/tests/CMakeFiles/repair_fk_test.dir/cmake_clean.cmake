file(REMOVE_RECURSE
  "CMakeFiles/repair_fk_test.dir/repair_fk_test.cc.o"
  "CMakeFiles/repair_fk_test.dir/repair_fk_test.cc.o.d"
  "repair_fk_test"
  "repair_fk_test.pdb"
  "repair_fk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_fk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
