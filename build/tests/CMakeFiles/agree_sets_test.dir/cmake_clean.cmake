file(REMOVE_RECURSE
  "CMakeFiles/agree_sets_test.dir/agree_sets_test.cc.o"
  "CMakeFiles/agree_sets_test.dir/agree_sets_test.cc.o.d"
  "agree_sets_test"
  "agree_sets_test.pdb"
  "agree_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agree_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
