# Empty compiler generated dependencies file for dep_miner_test.
# This may be replaced when dependencies are built.
