file(REMOVE_RECURSE
  "CMakeFiles/dep_miner_test.dir/dep_miner_test.cc.o"
  "CMakeFiles/dep_miner_test.dir/dep_miner_test.cc.o.d"
  "dep_miner_test"
  "dep_miner_test.pdb"
  "dep_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
