file(REMOVE_RECURSE
  "CMakeFiles/armstrong_test.dir/armstrong_test.cc.o"
  "CMakeFiles/armstrong_test.dir/armstrong_test.cc.o.d"
  "armstrong_test"
  "armstrong_test.pdb"
  "armstrong_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstrong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
