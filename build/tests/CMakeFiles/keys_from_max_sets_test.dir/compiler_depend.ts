# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for keys_from_max_sets_test.
