file(REMOVE_RECURSE
  "CMakeFiles/keys_from_max_sets_test.dir/keys_from_max_sets_test.cc.o"
  "CMakeFiles/keys_from_max_sets_test.dir/keys_from_max_sets_test.cc.o.d"
  "keys_from_max_sets_test"
  "keys_from_max_sets_test.pdb"
  "keys_from_max_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keys_from_max_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
