# Empty dependencies file for keys_from_max_sets_test.
# This may be replaced when dependencies are built.
