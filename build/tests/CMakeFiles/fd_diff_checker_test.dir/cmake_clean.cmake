file(REMOVE_RECURSE
  "CMakeFiles/fd_diff_checker_test.dir/fd_diff_checker_test.cc.o"
  "CMakeFiles/fd_diff_checker_test.dir/fd_diff_checker_test.cc.o.d"
  "fd_diff_checker_test"
  "fd_diff_checker_test.pdb"
  "fd_diff_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_diff_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
