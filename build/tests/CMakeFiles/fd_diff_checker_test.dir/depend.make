# Empty dependencies file for fd_diff_checker_test.
# This may be replaced when dependencies are built.
