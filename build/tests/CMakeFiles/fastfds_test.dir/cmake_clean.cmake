file(REMOVE_RECURSE
  "CMakeFiles/fastfds_test.dir/fastfds_test.cc.o"
  "CMakeFiles/fastfds_test.dir/fastfds_test.cc.o.d"
  "fastfds_test"
  "fastfds_test.pdb"
  "fastfds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
