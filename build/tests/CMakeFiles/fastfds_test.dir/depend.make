# Empty dependencies file for fastfds_test.
# This may be replaced when dependencies are built.
