# Empty compiler generated dependencies file for fastfds_test.
# This may be replaced when dependencies are built.
