# Empty compiler generated dependencies file for closed_sets_test.
# This may be replaced when dependencies are built.
