file(REMOVE_RECURSE
  "CMakeFiles/closed_sets_test.dir/closed_sets_test.cc.o"
  "CMakeFiles/closed_sets_test.dir/closed_sets_test.cc.o.d"
  "closed_sets_test"
  "closed_sets_test.pdb"
  "closed_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
