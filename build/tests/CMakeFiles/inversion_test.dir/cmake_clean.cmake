file(REMOVE_RECURSE
  "CMakeFiles/inversion_test.dir/inversion_test.cc.o"
  "CMakeFiles/inversion_test.dir/inversion_test.cc.o.d"
  "inversion_test"
  "inversion_test.pdb"
  "inversion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
