file(REMOVE_RECURSE
  "CMakeFiles/max_sets_test.dir/max_sets_test.cc.o"
  "CMakeFiles/max_sets_test.dir/max_sets_test.cc.o.d"
  "max_sets_test"
  "max_sets_test.pdb"
  "max_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
