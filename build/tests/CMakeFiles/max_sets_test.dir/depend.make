# Empty dependencies file for max_sets_test.
# This may be replaced when dependencies are built.
