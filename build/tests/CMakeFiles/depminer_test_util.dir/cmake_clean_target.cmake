file(REMOVE_RECURSE
  "libdepminer_test_util.a"
)
