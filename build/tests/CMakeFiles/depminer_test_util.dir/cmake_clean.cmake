file(REMOVE_RECURSE
  "CMakeFiles/depminer_test_util.dir/test_util.cc.o"
  "CMakeFiles/depminer_test_util.dir/test_util.cc.o.d"
  "libdepminer_test_util.a"
  "libdepminer_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depminer_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
