# Empty dependencies file for depminer_test_util.
# This may be replaced when dependencies are built.
