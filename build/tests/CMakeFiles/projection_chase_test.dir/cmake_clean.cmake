file(REMOVE_RECURSE
  "CMakeFiles/projection_chase_test.dir/projection_chase_test.cc.o"
  "CMakeFiles/projection_chase_test.dir/projection_chase_test.cc.o.d"
  "projection_chase_test"
  "projection_chase_test.pdb"
  "projection_chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
