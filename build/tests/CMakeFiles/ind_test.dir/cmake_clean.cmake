file(REMOVE_RECURSE
  "CMakeFiles/ind_test.dir/ind_test.cc.o"
  "CMakeFiles/ind_test.dir/ind_test.cc.o.d"
  "ind_test"
  "ind_test.pdb"
  "ind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
