file(REMOVE_RECURSE
  "CMakeFiles/bench_discovery.dir/bench_discovery.cc.o"
  "CMakeFiles/bench_discovery.dir/bench_discovery.cc.o.d"
  "bench_discovery"
  "bench_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
