file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transversal.dir/bench_ablation_transversal.cc.o"
  "CMakeFiles/bench_ablation_transversal.dir/bench_ablation_transversal.cc.o.d"
  "bench_ablation_transversal"
  "bench_ablation_transversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
