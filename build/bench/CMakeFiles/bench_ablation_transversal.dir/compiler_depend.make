# Empty compiler generated dependencies file for bench_ablation_transversal.
# This may be replaced when dependencies are built.
