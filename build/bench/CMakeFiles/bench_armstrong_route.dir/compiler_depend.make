# Empty compiler generated dependencies file for bench_armstrong_route.
# This may be replaced when dependencies are built.
