file(REMOVE_RECURSE
  "CMakeFiles/bench_armstrong_route.dir/bench_armstrong_route.cc.o"
  "CMakeFiles/bench_armstrong_route.dir/bench_armstrong_route.cc.o.d"
  "bench_armstrong_route"
  "bench_armstrong_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_armstrong_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
