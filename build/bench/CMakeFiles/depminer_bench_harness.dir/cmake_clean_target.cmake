file(REMOVE_RECURSE
  "libdepminer_bench_harness.a"
)
