file(REMOVE_RECURSE
  "CMakeFiles/depminer_bench_harness.dir/table_harness.cc.o"
  "CMakeFiles/depminer_bench_harness.dir/table_harness.cc.o.d"
  "libdepminer_bench_harness.a"
  "libdepminer_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depminer_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
