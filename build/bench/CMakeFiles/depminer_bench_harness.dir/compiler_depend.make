# Empty compiler generated dependencies file for depminer_bench_harness.
# This may be replaced when dependencies are built.
