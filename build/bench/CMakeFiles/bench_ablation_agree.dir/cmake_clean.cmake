file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_agree.dir/bench_ablation_agree.cc.o"
  "CMakeFiles/bench_ablation_agree.dir/bench_ablation_agree.cc.o.d"
  "bench_ablation_agree"
  "bench_ablation_agree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_agree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
