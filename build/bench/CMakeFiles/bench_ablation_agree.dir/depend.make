# Empty dependencies file for bench_ablation_agree.
# This may be replaced when dependencies are built.
