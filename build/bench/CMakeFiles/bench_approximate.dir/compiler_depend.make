# Empty compiler generated dependencies file for bench_approximate.
# This may be replaced when dependencies are built.
