# Empty dependencies file for depminer.
# This may be replaced when dependencies are built.
