file(REMOVE_RECURSE
  "libdepminer.a"
)
