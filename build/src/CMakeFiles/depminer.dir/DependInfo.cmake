
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/depminer.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/depminer.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/arg_parser.cc" "src/CMakeFiles/depminer.dir/common/arg_parser.cc.o" "gcc" "src/CMakeFiles/depminer.dir/common/arg_parser.cc.o.d"
  "/root/repo/src/common/attribute_set.cc" "src/CMakeFiles/depminer.dir/common/attribute_set.cc.o" "gcc" "src/CMakeFiles/depminer.dir/common/attribute_set.cc.o.d"
  "/root/repo/src/common/run_context.cc" "src/CMakeFiles/depminer.dir/common/run_context.cc.o" "gcc" "src/CMakeFiles/depminer.dir/common/run_context.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/depminer.dir/common/status.cc.o" "gcc" "src/CMakeFiles/depminer.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/depminer.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/depminer.dir/common/strings.cc.o.d"
  "/root/repo/src/core/agree_sets.cc" "src/CMakeFiles/depminer.dir/core/agree_sets.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/agree_sets.cc.o.d"
  "/root/repo/src/core/armstrong.cc" "src/CMakeFiles/depminer.dir/core/armstrong.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/armstrong.cc.o.d"
  "/root/repo/src/core/armstrong_bounds.cc" "src/CMakeFiles/depminer.dir/core/armstrong_bounds.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/armstrong_bounds.cc.o.d"
  "/root/repo/src/core/dep_miner.cc" "src/CMakeFiles/depminer.dir/core/dep_miner.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/dep_miner.cc.o.d"
  "/root/repo/src/core/inversion.cc" "src/CMakeFiles/depminer.dir/core/inversion.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/inversion.cc.o.d"
  "/root/repo/src/core/keys_from_max_sets.cc" "src/CMakeFiles/depminer.dir/core/keys_from_max_sets.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/keys_from_max_sets.cc.o.d"
  "/root/repo/src/core/lhs.cc" "src/CMakeFiles/depminer.dir/core/lhs.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/lhs.cc.o.d"
  "/root/repo/src/core/max_sets.cc" "src/CMakeFiles/depminer.dir/core/max_sets.cc.o" "gcc" "src/CMakeFiles/depminer.dir/core/max_sets.cc.o.d"
  "/root/repo/src/datagen/embedded_fd.cc" "src/CMakeFiles/depminer.dir/datagen/embedded_fd.cc.o" "gcc" "src/CMakeFiles/depminer.dir/datagen/embedded_fd.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/CMakeFiles/depminer.dir/datagen/synthetic.cc.o" "gcc" "src/CMakeFiles/depminer.dir/datagen/synthetic.cc.o.d"
  "/root/repo/src/fastfds/fastfds.cc" "src/CMakeFiles/depminer.dir/fastfds/fastfds.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fastfds/fastfds.cc.o.d"
  "/root/repo/src/fd/chase.cc" "src/CMakeFiles/depminer.dir/fd/chase.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/chase.cc.o.d"
  "/root/repo/src/fd/closed_sets.cc" "src/CMakeFiles/depminer.dir/fd/closed_sets.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/closed_sets.cc.o.d"
  "/root/repo/src/fd/explain.cc" "src/CMakeFiles/depminer.dir/fd/explain.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/explain.cc.o.d"
  "/root/repo/src/fd/fd_diff.cc" "src/CMakeFiles/depminer.dir/fd/fd_diff.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/fd_diff.cc.o.d"
  "/root/repo/src/fd/fd_io.cc" "src/CMakeFiles/depminer.dir/fd/fd_io.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/fd_io.cc.o.d"
  "/root/repo/src/fd/fd_set.cc" "src/CMakeFiles/depminer.dir/fd/fd_set.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/fd_set.cc.o.d"
  "/root/repo/src/fd/functional_dependency.cc" "src/CMakeFiles/depminer.dir/fd/functional_dependency.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/functional_dependency.cc.o.d"
  "/root/repo/src/fd/keys.cc" "src/CMakeFiles/depminer.dir/fd/keys.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/keys.cc.o.d"
  "/root/repo/src/fd/naive_discovery.cc" "src/CMakeFiles/depminer.dir/fd/naive_discovery.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/naive_discovery.cc.o.d"
  "/root/repo/src/fd/normalization.cc" "src/CMakeFiles/depminer.dir/fd/normalization.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/normalization.cc.o.d"
  "/root/repo/src/fd/projection.cc" "src/CMakeFiles/depminer.dir/fd/projection.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/projection.cc.o.d"
  "/root/repo/src/fd/repair.cc" "src/CMakeFiles/depminer.dir/fd/repair.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/repair.cc.o.d"
  "/root/repo/src/fd/satisfaction.cc" "src/CMakeFiles/depminer.dir/fd/satisfaction.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/satisfaction.cc.o.d"
  "/root/repo/src/fd/satisfaction_checker.cc" "src/CMakeFiles/depminer.dir/fd/satisfaction_checker.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fd/satisfaction_checker.cc.o.d"
  "/root/repo/src/fdep/fdep.cc" "src/CMakeFiles/depminer.dir/fdep/fdep.cc.o" "gcc" "src/CMakeFiles/depminer.dir/fdep/fdep.cc.o.d"
  "/root/repo/src/hypergraph/berge_transversals.cc" "src/CMakeFiles/depminer.dir/hypergraph/berge_transversals.cc.o" "gcc" "src/CMakeFiles/depminer.dir/hypergraph/berge_transversals.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/CMakeFiles/depminer.dir/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/depminer.dir/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/hypergraph/levelwise_transversals.cc" "src/CMakeFiles/depminer.dir/hypergraph/levelwise_transversals.cc.o" "gcc" "src/CMakeFiles/depminer.dir/hypergraph/levelwise_transversals.cc.o.d"
  "/root/repo/src/ind/foreign_keys.cc" "src/CMakeFiles/depminer.dir/ind/foreign_keys.cc.o" "gcc" "src/CMakeFiles/depminer.dir/ind/foreign_keys.cc.o.d"
  "/root/repo/src/ind/nary_ind.cc" "src/CMakeFiles/depminer.dir/ind/nary_ind.cc.o" "gcc" "src/CMakeFiles/depminer.dir/ind/nary_ind.cc.o.d"
  "/root/repo/src/ind/unary_ind.cc" "src/CMakeFiles/depminer.dir/ind/unary_ind.cc.o" "gcc" "src/CMakeFiles/depminer.dir/ind/unary_ind.cc.o.d"
  "/root/repo/src/partition/partition.cc" "src/CMakeFiles/depminer.dir/partition/partition.cc.o" "gcc" "src/CMakeFiles/depminer.dir/partition/partition.cc.o.d"
  "/root/repo/src/partition/partition_database.cc" "src/CMakeFiles/depminer.dir/partition/partition_database.cc.o" "gcc" "src/CMakeFiles/depminer.dir/partition/partition_database.cc.o.d"
  "/root/repo/src/partition/partition_product.cc" "src/CMakeFiles/depminer.dir/partition/partition_product.cc.o" "gcc" "src/CMakeFiles/depminer.dir/partition/partition_product.cc.o.d"
  "/root/repo/src/partition/stripped_partition.cc" "src/CMakeFiles/depminer.dir/partition/stripped_partition.cc.o" "gcc" "src/CMakeFiles/depminer.dir/partition/stripped_partition.cc.o.d"
  "/root/repo/src/relation/csv.cc" "src/CMakeFiles/depminer.dir/relation/csv.cc.o" "gcc" "src/CMakeFiles/depminer.dir/relation/csv.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/depminer.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/depminer.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/relation_builder.cc" "src/CMakeFiles/depminer.dir/relation/relation_builder.cc.o" "gcc" "src/CMakeFiles/depminer.dir/relation/relation_builder.cc.o.d"
  "/root/repo/src/relation/relation_ops.cc" "src/CMakeFiles/depminer.dir/relation/relation_ops.cc.o" "gcc" "src/CMakeFiles/depminer.dir/relation/relation_ops.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/depminer.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/depminer.dir/relation/schema.cc.o.d"
  "/root/repo/src/report/database_profile.cc" "src/CMakeFiles/depminer.dir/report/database_profile.cc.o" "gcc" "src/CMakeFiles/depminer.dir/report/database_profile.cc.o.d"
  "/root/repo/src/report/json_writer.cc" "src/CMakeFiles/depminer.dir/report/json_writer.cc.o" "gcc" "src/CMakeFiles/depminer.dir/report/json_writer.cc.o.d"
  "/root/repo/src/report/profile.cc" "src/CMakeFiles/depminer.dir/report/profile.cc.o" "gcc" "src/CMakeFiles/depminer.dir/report/profile.cc.o.d"
  "/root/repo/src/storage/column_file.cc" "src/CMakeFiles/depminer.dir/storage/column_file.cc.o" "gcc" "src/CMakeFiles/depminer.dir/storage/column_file.cc.o.d"
  "/root/repo/src/storage/streaming.cc" "src/CMakeFiles/depminer.dir/storage/streaming.cc.o" "gcc" "src/CMakeFiles/depminer.dir/storage/streaming.cc.o.d"
  "/root/repo/src/tane/tane.cc" "src/CMakeFiles/depminer.dir/tane/tane.cc.o" "gcc" "src/CMakeFiles/depminer.dir/tane/tane.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
