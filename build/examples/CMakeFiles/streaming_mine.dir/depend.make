# Empty dependencies file for streaming_mine.
# This may be replaced when dependencies are built.
