file(REMOVE_RECURSE
  "CMakeFiles/streaming_mine.dir/streaming_mine.cpp.o"
  "CMakeFiles/streaming_mine.dir/streaming_mine.cpp.o.d"
  "streaming_mine"
  "streaming_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
