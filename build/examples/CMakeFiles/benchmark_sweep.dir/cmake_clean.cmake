file(REMOVE_RECURSE
  "CMakeFiles/benchmark_sweep.dir/benchmark_sweep.cpp.o"
  "CMakeFiles/benchmark_sweep.dir/benchmark_sweep.cpp.o.d"
  "benchmark_sweep"
  "benchmark_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
