file(REMOVE_RECURSE
  "CMakeFiles/armstrong_explorer.dir/armstrong_explorer.cpp.o"
  "CMakeFiles/armstrong_explorer.dir/armstrong_explorer.cpp.o.d"
  "armstrong_explorer"
  "armstrong_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstrong_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
