# Empty dependencies file for armstrong_explorer.
# This may be replaced when dependencies are built.
