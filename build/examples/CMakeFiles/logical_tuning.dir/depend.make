# Empty dependencies file for logical_tuning.
# This may be replaced when dependencies are built.
