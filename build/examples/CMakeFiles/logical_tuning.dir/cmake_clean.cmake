file(REMOVE_RECURSE
  "CMakeFiles/logical_tuning.dir/logical_tuning.cpp.o"
  "CMakeFiles/logical_tuning.dir/logical_tuning.cpp.o.d"
  "logical_tuning"
  "logical_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
