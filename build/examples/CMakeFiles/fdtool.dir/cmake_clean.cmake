file(REMOVE_RECURSE
  "CMakeFiles/fdtool.dir/fdtool.cpp.o"
  "CMakeFiles/fdtool.dir/fdtool.cpp.o.d"
  "fdtool"
  "fdtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
