# Empty dependencies file for fdtool.
# This may be replaced when dependencies are built.
