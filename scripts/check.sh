#!/usr/bin/env bash
# Full local gate: configure and build the given presets, run the test
# suite under each. This is what CI runs; run it before sending a change.
#
#   scripts/check.sh            # default + asan-ubsan
#   scripts/check.sh default    # just the plain Release build
#   scripts/check.sh asan-ubsan # just the sanitizer build
#   scripts/check.sh tsan       # parallel suites under ThreadSanitizer
#
# The tsan preset is opt-in (slow; ~5-15x): its test preset filters down
# to the concurrency-heavy suites (worker pool, agree sets, partitions,
# TANE, Dep-Miner, RunContext, the dominance kernel, the parallel CMAX
# determinism suites and the tracing/telemetry suites) — see
# CMakePresets.json. The dominance/CMAX suites can also run in isolation
# (ctest -L dominance), as can tracing (ctest -L trace) and the
# exporter/logger/progress suites (ctest -L telemetry).
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(default asan-ubsan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure [${preset}]"
  cmake --preset "${preset}"
  echo "==> build [${preset}]"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test [${preset}]"
  ctest --preset "${preset}" -j "${jobs}"
done

# Tracing smoke-run: a traced mine must produce parseable chrome://tracing
# JSON end to end (the Release build is the one benchmarks ship with).
for preset in "${presets[@]}"; do
  if [ "${preset}" = "default" ] && [ -x build/examples/fdtool ]; then
    echo "==> trace smoke-run [default]"
    trace_out=/tmp/depminer_trace_smoke.json
    build/examples/fdtool mine data/orders.csv --threads=2 \
      --trace="${trace_out}" --metrics >/dev/null 2>&1
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool "${trace_out}" >/dev/null
      echo "    trace JSON parses: ${trace_out}"
    else
      echo "    python3 not found; skipping JSON parse check"
    fi
    rm -f "${trace_out}"
  fi
done

# bench_scale smoke-run: the paper-scale corpus generator and bench
# binary at a seconds-long scale — every grid dataset generated, every
# phase measured once at 1 and 2 threads with identical-output
# verification, JSON emitted and parsed. Keeps the bench binaries and
# the generator from rotting between full baseline runs.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) bench_scale=build/bench/bench_scale ;;
    asan-ubsan) bench_scale=build-asan-ubsan/bench/bench_scale ;;
    *) continue ;;
  esac
  if [ -x "${bench_scale}" ]; then
    echo "==> bench_scale smoke-run [${preset}]"
    scale_out=/tmp/depminer_bench_scale_smoke_${preset}.json
    "${bench_scale}" --scale=0.002 --reps=1 --threads=1,2 \
      --json="${scale_out}" >/dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool "${scale_out}" >/dev/null
      echo "    scale JSON parses: ${scale_out}"
    fi
    rm -f "${scale_out}"
  fi
done

# Arity-capped bench smoke-run: the --arity smoke mode restricts the
# sweep to one cap and verifies, per grid dataset, that TANE and
# Dep-Miner agree on the capped cover (the equals-filtered check runs in
# the full sweep). Keeps the pruning plumbing from rotting between
# full baseline runs.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) bench_scale=build/bench/bench_scale ;;
    asan-ubsan) bench_scale=build-asan-ubsan/bench/bench_scale ;;
    *) continue ;;
  esac
  if [ -x "${bench_scale}" ]; then
    echo "==> bench_scale arity smoke-run [${preset}]"
    arity_out=/tmp/depminer_bench_arity_smoke_${preset}.json
    "${bench_scale}" --scale=0.002 --reps=1 --threads=1 --arity=3 \
      --json="${arity_out}" >/dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool "${arity_out}" >/dev/null
      echo "    arity JSON parses: ${arity_out}"
    fi
    rm -f "${arity_out}"
  fi
done

# Fuzz smoke-run: a deterministic slice of the differential verification
# harness (docs/VERIFICATION.md) — all five miners cross-checked on 25
# adversarial relations, Armstrong round-trips included. Runs under the
# plain Release build and the sanitizer build; on divergence fdtool exits
# non-zero with the repro path on the last line.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) fdtool=build/examples/fdtool ;;
    asan-ubsan) fdtool=build-asan-ubsan/examples/fdtool ;;
    *) continue ;;
  esac
  if [ -x "${fdtool}" ]; then
    echo "==> fuzz smoke-run [${preset}]"
    "${fdtool}" fuzz --iterations=25 --seed=7 \
      --repro-dir=/tmp/depminer_fuzz_repros_${preset}
  fi
done

# Fault-sweep smoke-run: inject every registered fault into every miner
# and the CSV reader over 10 seeds (docs/ROBUSTNESS.md) and require both
# that every expectation held AND that faults actually fired — a sweep
# that fires nothing proves nothing. Runs under the plain Release build
# and the sanitizer build.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) fdtool=build/examples/fdtool ;;
    asan-ubsan) fdtool=build-asan-ubsan/examples/fdtool ;;
    *) continue ;;
  esac
  if [ -x "${fdtool}" ]; then
    echo "==> fault-sweep smoke-run [${preset}]"
    sweep_out="$("${fdtool}" fuzz --faults --iterations=10 --seed=3)"
    echo "    ${sweep_out}"
    case "${sweep_out}" in
      *" 0 with a fired fault"*)
        echo "    ERROR: the sweep never fired a fault" >&2; exit 1 ;;
      *"all expectations held"*) ;;
      *)
        echo "    ERROR: fault-sweep expectations violated" >&2; exit 1 ;;
    esac
  fi
done

# Telemetry smoke-run: generate a corpus-scale dataset with fdtool
# datagen, mine it with the full observability surface on
# (docs/OBSERVABILITY.md) — Prometheus export, JSON logs, live progress —
# and validate the artifacts with a tiny parser: the .prom file must be
# well-formed text exposition with at least 3 histogram families, and
# every stderr line must be a JSON object with level/subsystem/message.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) fdtool=build/examples/fdtool ;;
    asan-ubsan) fdtool=build-asan-ubsan/examples/fdtool ;;
    *) continue ;;
  esac
  if [ -x "${fdtool}" ] && command -v python3 >/dev/null 2>&1; then
    echo "==> telemetry smoke-run [${preset}]"
    telem_csv=/tmp/depminer_telemetry_smoke_${preset}.csv
    telem_prom=/tmp/depminer_telemetry_smoke_${preset}.prom
    telem_log=/tmp/depminer_telemetry_smoke_${preset}.log
    "${fdtool}" datagen "${telem_csv}" --corpus-scale=0.002 \
      --spec=tuples 2>/dev/null
    "${fdtool}" mine "${telem_csv}" --threads=2 \
      --metrics-out="${telem_prom}" --log-json --progress \
      --progress-ms=200 >/dev/null 2>"${telem_log}"
    python3 - "${telem_prom}" "${telem_log}" <<'PYEOF'
import json, re, sys
prom_path, log_path = sys.argv[1], sys.argv[2]
histograms, samples = set(), 0
with open(prom_path) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            if kind == "histogram":
                histograms.add(name)
            continue
        if line.startswith("#"):
            continue
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', line)
        assert m, f"unparseable sample line: {line!r}"
        float(m.group(3))
        assert m.group(1).startswith("depminer_"), line
        samples += 1
assert samples > 0, "no samples in the Prometheus export"
assert len(histograms) >= 3, \
    f"expected >=3 histogram families, got {sorted(histograms)}"
log_lines = 0
with open(log_path) as f:
    for line in f:
        if not line.strip():
            continue
        rec = json.loads(line)
        for key in ("ts", "level", "subsystem", "message"):
            assert key in rec, f"missing {key}: {line!r}"
        log_lines += 1
assert log_lines > 0, "no JSON log lines on stderr"
print(f"    {samples} samples, {len(histograms)} histogram families, "
      f"{log_lines} JSON log lines")
PYEOF
    rm -f "${telem_csv}" "${telem_prom}" "${telem_log}"
  fi
done

# bench_compare self-compare smoke: a baseline compared against itself
# must report zero regressions, and a doubled timing must trip it. Keeps
# the regression gate itself from rotting.
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_scale.json ]; then
  echo "==> bench_compare smoke-run"
  python3 scripts/bench_compare.py BENCH_scale.json BENCH_scale.json \
    --quiet
  python3 - <<'PYEOF'
import json, subprocess, sys
doc = json.load(open("BENCH_agree_threads.json"))
doc["results"][0]["depminer_s"] *= 10.0
path = "/tmp/depminer_bench_compare_smoke.json"
json.dump(doc, open(path, "w"))
rc = subprocess.run(
    [sys.executable, "scripts/bench_compare.py",
     "BENCH_agree_threads.json", path, "--quiet"],
    stdout=subprocess.DEVNULL).returncode
assert rc == 1, f"a 10x regression must exit 1, got {rc}"
print("    self-compare clean; injected regression detected")
PYEOF
  rm -f /tmp/depminer_bench_compare_smoke.json
fi

# Kill-and-resume smoke-run: SIGKILL a checkpointed mine while the
# job/stall fault site holds it at a phase boundary (checkpoint already
# on disk), then resume and require the exact cover an uninterrupted
# mine produces. The harshest crash model we can deliver from a script.
if [ -x build/examples/fdtool ]; then
  echo "==> kill-and-resume smoke-run [default]"
  ckpt_dir=/tmp/depminer_ckpt_smoke
  rm -rf "${ckpt_dir}"
  reference="$(build/examples/fdtool mine data/orders.csv)"
  build/examples/fdtool mine data/orders.csv \
    --checkpoint-dir="${ckpt_dir}" \
    --fault-site=job/stall --fault-hit=0 --fault-stall-ms=60000 \
    >/dev/null 2>&1 &
  mine_pid=$!
  # Wait for the first phase-boundary checkpoint to appear, then kill -9.
  for _ in $(seq 1 100); do
    if ls "${ckpt_dir}"/*.dmk >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  if ! ls "${ckpt_dir}"/*.dmk >/dev/null 2>&1; then
    echo "    ERROR: no checkpoint appeared before the kill" >&2
    kill -9 "${mine_pid}" 2>/dev/null || true
    exit 1
  fi
  kill -9 "${mine_pid}" 2>/dev/null || true
  wait "${mine_pid}" 2>/dev/null || true
  resumed="$(build/examples/fdtool mine data/orders.csv \
      --checkpoint-dir="${ckpt_dir}" 2>/dev/null)"
  if [ "${resumed}" != "${reference}" ]; then
    echo "    ERROR: resumed cover differs from the uninterrupted one" >&2
    exit 1
  fi
  echo "    resumed cover matches after kill -9"
  rm -rf "${ckpt_dir}"
fi

# Serve smoke-run (docs/SERVING.md): start the daemon, register a
# datagen relation, mine it twice asserting the second request is a
# result-cache hit (visible in the scrape-able metrics file), require
# the served cover to equal one-shot `fdtool mine` byte for byte, drain
# on SIGTERM, then kill -9 a fresh daemon and reopen its catalog
# cleanly — the durability contract under the harshest crash model.
for preset in "${presets[@]}"; do
  case "${preset}" in
    default) fdtool=build/examples/fdtool ;;
    asan-ubsan) fdtool=build-asan-ubsan/examples/fdtool ;;
    *) continue ;;
  esac
  if [ -x "${fdtool}" ]; then
    echo "==> serve smoke-run [${preset}]"
    serve_dir=/tmp/depminer_serve_smoke_${preset}
    rm -rf "${serve_dir}"
    mkdir -p "${serve_dir}/cat"
    sock="${serve_dir}/sock"
    prom="${serve_dir}/m.prom"
    "${fdtool}" datagen "${serve_dir}/data.csv" --tuples=200 \
      --attributes=6 --seed=7 2>/dev/null
    "${fdtool}" serve --catalog-dir="${serve_dir}/cat" --socket="${sock}" \
      --threads=2 --metrics-out="${prom}" >"${serve_dir}/serve.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
      [ -S "${sock}" ] && break
      sleep 0.1
    done
    if ! [ -S "${sock}" ]; then
      echo "    ERROR: daemon never bound ${sock}" >&2
      cat "${serve_dir}/serve.log" >&2
      kill -9 "${serve_pid}" 2>/dev/null || true
      exit 1
    fi
    "${fdtool}" client --socket="${sock}" put ds "${serve_dir}/data.csv" \
      >/dev/null 2>&1
    "${fdtool}" client --socket="${sock}" mine ds \
      >"${serve_dir}/cover1.txt" 2>/dev/null
    "${fdtool}" client --socket="${sock}" mine ds \
      >"${serve_dir}/cover2.txt" 2>/dev/null
    if ! cmp -s "${serve_dir}/cover1.txt" "${serve_dir}/cover2.txt"; then
      echo "    ERROR: cached cover differs from the mined one" >&2
      exit 1
    fi
    "${fdtool}" mine "${serve_dir}/data.csv" \
      >"${serve_dir}/oneshot.txt" 2>/dev/null
    if ! cmp -s "${serve_dir}/cover1.txt" "${serve_dir}/oneshot.txt"; then
      echo "    ERROR: served cover differs from one-shot fdtool mine" >&2
      exit 1
    fi
    if ! grep -q 'label="cache_hit"} [1-9]' "${prom}"; then
      echo "    ERROR: no server/cache_hit in ${prom}" >&2
      cat "${prom}" >&2
      exit 1
    fi
    kill -TERM "${serve_pid}"
    if ! wait "${serve_pid}"; then
      echo "    ERROR: daemon did not drain cleanly on SIGTERM" >&2
      cat "${serve_dir}/serve.log" >&2
      exit 1
    fi
    if [ -S "${sock}" ]; then
      echo "    ERROR: socket not unlinked after drain" >&2
      exit 1
    fi
    # Crash half: a freshly restarted daemon is SIGKILLed; the catalog
    # it wrote must reopen cleanly with the dataset intact.
    "${fdtool}" serve --catalog-dir="${serve_dir}/cat" --socket="${sock}" \
      --threads=2 >>"${serve_dir}/serve.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
      [ -S "${sock}" ] && break
      sleep 0.1
    done
    "${fdtool}" client --socket="${sock}" ping >/dev/null 2>&1 || true
    kill -9 "${serve_pid}" 2>/dev/null || true
    wait "${serve_pid}" 2>/dev/null || true
    if ! "${fdtool}" catalog "${serve_dir}/cat" list | grep -q '^ds$'; then
      echo "    ERROR: catalog did not reopen cleanly after kill -9" >&2
      exit 1
    fi
    echo "    cache hit, bit-identical cover, clean drain, kill -9 reopen"
    rm -rf "${serve_dir}"
  fi
done

echo "==> all checks passed"
