#!/usr/bin/env bash
# Full local gate: configure and build the given presets, run the test
# suite under each. This is what CI runs; run it before sending a change.
#
#   scripts/check.sh            # default + asan-ubsan
#   scripts/check.sh default    # just the plain Release build
#   scripts/check.sh asan-ubsan # just the sanitizer build
#   scripts/check.sh tsan       # parallel suites under ThreadSanitizer
#
# The tsan preset is opt-in (slow; ~5-15x): its test preset filters down
# to the concurrency-heavy suites (worker pool, agree sets, partitions,
# TANE, Dep-Miner, RunContext, the dominance kernel and the parallel
# CMAX determinism suites) — see CMakePresets.json. The dominance/CMAX
# suites can also run in isolation: ctest -L dominance.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(default asan-ubsan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure [${preset}]"
  cmake --preset "${preset}"
  echo "==> build [${preset}]"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test [${preset}]"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "==> all checks passed"
