#!/usr/bin/env bash
# Records the paper-scale corpus baseline: runs bench_scale over the full
# PaperScaleCorpus() grid (the paper's §7 Tables 3–5 regime — tuple,
# attribute and correlation sweeps plus the fixed-domain and Zipf points)
# at 1/2/8 threads and writes machine-readable per-phase medians to
# BENCH_scale.json at the repo root. The checked-in copy of that file is
# the perf baseline; re-run this script after touching the generator, the
# dominance kernel or the morsel engine and compare. The JSON records
# hardware_threads — on a 1-core box it also carries
# "warning":"hardware_threads==1" and the speedup columns mean nothing.
#
#   scripts/bench_scale.sh               # full grid (minutes)
#   scripts/bench_scale.sh --scale=4     # push the tuple sweep to 1.6M
#   scripts/bench_scale.sh --scale=0.01  # seconds-long smoke
set -euo pipefail

cd "$(dirname "$0")/.."

if [ ! -x build/bench/bench_scale ]; then
  echo "==> building bench_scale"
  cmake --preset default >/dev/null
  cmake --build build --target bench_scale -j \
    "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fi

./build/bench/bench_scale --threads=1,2,8 \
  --json=BENCH_scale.json "$@"

echo "==> baseline written to BENCH_scale.json"
