#!/usr/bin/env bash
# Measures the cost of the fault-injection layer and records it to
# BENCH_fault_overhead.json at the repo root: the same deterministic
# workload (a fuzz-harness slice exercising all five miners end to end)
# timed under
#   - the default build, no plan installed (every site polls one relaxed
#     atomic load — the "inactive" cost production binaries pay), and
#   - a -DDEPMINER_FAULTS=OFF build (every site compiled away — the
#     floor).
# The two medians must agree within run-to-run noise; the checked-in
# copy of the JSON is the baseline to compare against after touching the
# fault layer.
#
#   scripts/bench_fault.sh            # default: 5 timed runs each
#   scripts/bench_fault.sh --runs=9
set -euo pipefail

cd "$(dirname "$0")/.."

runs=5
for arg in "$@"; do
  case "${arg}" in
    --runs=*) runs="${arg#--runs=}" ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
workload=(fuzz --iterations=10 --seed=1 --shrink=false
          --repro-dir=/tmp/depminer_bench_fault_repros)

echo "==> building default preset (faults compiled in)"
cmake --preset default >/dev/null
cmake --build build --target fdtool -j "${jobs}" >/dev/null

echo "==> building faults-off build"
cmake -B build-faults-off -S . -DCMAKE_BUILD_TYPE=Release \
  -DDEPMINER_FAULTS=OFF -DDEPMINER_BUILD_TESTS=OFF \
  -DDEPMINER_BUILD_BENCHMARKS=OFF >/dev/null
cmake --build build-faults-off --target fdtool -j "${jobs}" >/dev/null

# Times one run in milliseconds.
time_one() {
  local binary=$1
  local start end
  start=$(date +%s%N)
  "${binary}" "${workload[@]}" >/dev/null 2>&1
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}

# Runs the workload `runs` times (after one warmup) and echoes the
# sorted, comma-separated series.
series() {
  local binary=$1
  "${binary}" "${workload[@]}" >/dev/null 2>&1  # warmup
  local times=()
  for _ in $(seq 1 "${runs}"); do
    times+=("$(time_one "${binary}")")
  done
  printf '%s\n' "${times[@]}" | sort -n | paste -sd, -
}

median_of() {
  echo "$1" | tr ',' '\n' | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}'
}

echo "==> timing inactive (faults compiled in, no plan): ${runs} runs"
on_series="$(series build/examples/fdtool)"
echo "    [${on_series}] ms"
echo "==> timing compiled-out (-DDEPMINER_FAULTS=OFF): ${runs} runs"
off_series="$(series build-faults-off/examples/fdtool)"
echo "    [${off_series}] ms"

on_median="$(median_of "${on_series}")"
off_median="$(median_of "${off_series}")"

cat > BENCH_fault_overhead.json <<EOF
{
  "benchmark": "fault_overhead",
  "workload": "fdtool fuzz --iterations=10 --seed=1 --shrink=false",
  "runs_per_mode": ${runs},
  "inactive": {
    "description": "default build, no FaultPlan installed (one relaxed atomic load per site poll)",
    "times_ms": [${on_series}],
    "median_ms": ${on_median}
  },
  "compiled_out": {
    "description": "-DDEPMINER_FAULTS=OFF build (sites expand to constants)",
    "times_ms": [${off_series}],
    "median_ms": ${off_median}
  },
  "inactive_over_compiled_out_median_ratio": $(awk -v a="${on_median}" -v b="${off_median}" 'BEGIN {printf "%.4f", b > 0 ? a / b : 0}')
}
EOF

echo "==> inactive median ${on_median} ms, compiled-out median ${off_median} ms"
echo "==> baseline written to BENCH_fault_overhead.json"
