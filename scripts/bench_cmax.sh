#!/usr/bin/env bash
# Records the subset-dominance kernel's ablation baseline: runs
# bench_ablation_dominance (Max⊆/Min⊆ kernel vs the retained quadratic
# scan on growing random families, and the single-pass CMAX_SET kernel
# vs the pre-kernel per-attribute loop on every bundled dataset) and
# writes machine-readable results to BENCH_cmax_dominance.json at the
# repo root. The checked-in copy of that file is the perf baseline;
# re-run this script after touching the dominance kernel and compare.
#
#   scripts/bench_cmax.sh               # default grid
#   scripts/bench_cmax.sh --iters=5000  # extra flags pass through
set -euo pipefail

cd "$(dirname "$0")/.."

if [ ! -x build/bench/bench_ablation_dominance ]; then
  echo "==> building bench_ablation_dominance"
  cmake --preset default >/dev/null
  cmake --build build --target bench_ablation_dominance -j \
    "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fi

./build/bench/bench_ablation_dominance \
  --json=BENCH_cmax_dominance.json "$@"

echo "==> baseline written to BENCH_cmax_dominance.json"
