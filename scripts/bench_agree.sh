#!/usr/bin/env bash
# Records the agree-set stage's thread-scaling trajectory: runs
# bench_threads on the default synthetic grid (40 attrs x 10k tuples,
# c = 50%) and writes machine-readable results to
# BENCH_agree_threads.json at the repo root. The checked-in copy of that
# file is the perf baseline; re-run this script after touching the
# parallel engine and compare.
#
#   scripts/bench_agree.sh                 # default grid, 1/2/4/8 threads
#   scripts/bench_agree.sh --tuples=20000  # extra flags pass through
set -euo pipefail

cd "$(dirname "$0")/.."

if [ ! -x build/bench/bench_threads ]; then
  echo "==> building bench_threads"
  cmake --preset default >/dev/null
  cmake --build build --target bench_threads -j \
    "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fi

./build/bench/bench_threads --threads=1,2,4,8 \
  --json=BENCH_agree_threads.json "$@"

echo "==> baseline written to BENCH_agree_threads.json"
