#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag median timing regressions.

The bench scripts (bench_scale.sh, bench_agree.sh, bench_cmax.sh,
bench_fault.sh) each emit a JSON report with a different shape, but all of
them bottom out in numeric timing leaves whose keys end in ``_s``, ``_ms``
or ``_ns`` (plus better-is-higher ``_speedup`` ratios).  Rather than teach
this script each schema, it flattens both files into ``path -> number``
maps and compares the paths they share:

  * list elements are keyed by an identifying field (``name``, ``threads``,
    ``sets``, ``scale``) when present, by index otherwise, so reordered or
    partially-overlapping runs still line up;
  * a numeric *array* under a timing key (e.g. ``times_ms``) is reduced to
    its median before comparison;
  * timing metrics regress when ``new > old * (1 + threshold)``; speedup
    metrics regress when ``new < old * (1 - threshold)``.

Exit codes: 0 = no regression, 1 = at least one metric regressed beyond
the threshold, 2 = usage or unreadable/invalid input.

Usage:
  scripts/bench_compare.py OLD.json NEW.json [--threshold-pct=25]

Typical flow: keep the committed BENCH_*.json as the baseline, re-run the
bench script on a candidate change, then::

  scripts/bench_compare.py BENCH_scale.json /tmp/BENCH_scale.new.json
"""

import argparse
import json
import statistics
import sys

TIMING_SUFFIXES = ("_s", "_ms", "_ns")
SPEEDUP_SUFFIX = "_speedup"
# Fields that identify an element inside a list of result dicts, in
# preference order.  "name" first so datasets match by dataset, not index.
IDENTITY_KEYS = ("name", "threads", "sets", "scale")
# Numeric leaves that describe the workload, not its speed.
IGNORED_KEYS = {"seed", "reps", "runs_per_mode", "hardware_threads"}


def is_metric_key(key):
    if key in IGNORED_KEYS:
        return False
    return key.endswith(TIMING_SUFFIXES) or key.endswith(SPEEDUP_SUFFIX)


def flatten(node, prefix, out):
    """Collect metric leaves of `node` into out[path] = float."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            path = f"{prefix}.{key}" if prefix else key
            if is_metric_key(key):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[path] = float(value)
                elif isinstance(value, list) and value and all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value
                ):
                    out[path + ":median"] = float(statistics.median(value))
            else:
                flatten(value, path, out)
    elif isinstance(node, list):
        for index, element in enumerate(node):
            tag = str(index)
            if isinstance(element, dict):
                for id_key in IDENTITY_KEYS:
                    if id_key in element:
                        tag = f"{id_key}={element[id_key]}"
                        break
            flatten(element, f"{prefix}[{tag}]", out)
    # Scalar leaves under non-metric keys carry no timing information.


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.stderr.write(f"bench_compare: cannot read {path}: {err}\n")
        sys.exit(2)
    metrics = {}
    flatten(doc, "", metrics)
    if not metrics:
        sys.stderr.write(f"bench_compare: no timing metrics found in {path}\n")
        sys.exit(2)
    return metrics


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; fail on median regressions."
    )
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=25.0,
        help="allowed slowdown per metric before failing (default: 25)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only regressions and the final verdict",
    )
    args = parser.parse_args(argv)
    if args.threshold_pct < 0:
        parser.error("--threshold-pct must be non-negative")

    old_metrics = load_metrics(args.old)
    new_metrics = load_metrics(args.new)
    shared = sorted(set(old_metrics) & set(new_metrics))
    if not shared:
        sys.stderr.write(
            "bench_compare: the two files share no metric paths; "
            "are they from the same bench script?\n"
        )
        sys.exit(2)

    threshold = args.threshold_pct / 100.0
    regressions = []
    for path in shared:
        old_value, new_value = old_metrics[path], new_metrics[path]
        higher_is_better = path.rsplit(":", 1)[0].endswith(SPEEDUP_SUFFIX)
        if old_value <= 0.0:
            # A zero/negative baseline gives no meaningful ratio.
            continue
        delta_pct = (new_value / old_value - 1.0) * 100.0
        if higher_is_better:
            regressed = new_value < old_value * (1.0 - threshold)
        else:
            regressed = new_value > old_value * (1.0 + threshold)
        if regressed:
            regressions.append((path, old_value, new_value, delta_pct))
        if not args.quiet or regressed:
            marker = "REGRESSION" if regressed else "ok"
            print(
                f"{marker:>10}  {path}: {old_value:.6g} -> {new_value:.6g} "
                f"({delta_pct:+.1f}%)"
            )

    only_old = set(old_metrics) - set(new_metrics)
    only_new = set(new_metrics) - set(old_metrics)
    if only_old and not args.quiet:
        print(f"note: {len(only_old)} metric(s) only in {args.old}")
    if only_new and not args.quiet:
        print(f"note: {len(only_new)} metric(s) only in {args.new}")

    if regressions:
        print(
            f"FAIL: {len(regressions)}/{len(shared)} shared metric(s) "
            f"regressed beyond {args.threshold_pct:g}%"
        )
        return 1
    print(
        f"OK: {len(shared)} shared metric(s) within {args.threshold_pct:g}% "
        f"of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
