#!/usr/bin/env python3
"""Plot the paper's figures from bench_table* --figure output.

Usage:
    ./build/bench/bench_table5 --figure > table5.txt
    python3 scripts/plot_figures.py table5.txt --out figures/

Parses the two "Figure series" blocks the table benches emit (execution
time per algorithm and |R|, and Armstrong sizes per |R|, both against
|r|) and renders the paper's Figure 2/3 (4/5, 6/7) analogues. Requires
matplotlib; prints a plain-text summary if it is unavailable.
"""

import argparse
import collections
import os
import sys


def parse_series(path):
    times = []  # (attrs, algorithm, tuples, seconds or None)
    sizes = []  # (attrs, tuples, armstrong_tuples)
    mode = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line.startswith("-- Figure series: time_seconds"):
                mode = "times"
                continue
            if line.startswith("-- Figure series: armstrong_tuples"):
                mode = "sizes"
                continue
            if not line or line.startswith("--") or line.startswith("=="):
                continue
            parts = line.split(",")
            if mode == "times" and len(parts) == 4 and parts[0] != "attrs":
                seconds = None if parts[3] == "*" else float(parts[3])
                times.append((int(parts[0]), parts[1], int(parts[2]), seconds))
            elif mode == "sizes" and len(parts) == 3 and parts[0] != "attrs":
                sizes.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return times, sizes


def text_summary(times, sizes):
    by_algo = collections.defaultdict(list)
    for attrs, algo, tuples, seconds in times:
        if seconds is not None:
            by_algo[(algo, attrs)].append((tuples, seconds))
    for (algo, attrs), points in sorted(by_algo.items()):
        series = " ".join(f"{t}:{s:.3f}s" for t, s in sorted(points))
        print(f"time {algo} |R|={attrs}: {series}")
    by_attrs = collections.defaultdict(list)
    for attrs, tuples, size in sizes:
        by_attrs[attrs].append((tuples, size))
    for attrs, points in sorted(by_attrs.items()):
        series = " ".join(f"{t}:{s}" for t, s in sorted(points))
        print(f"armstrong |R|={attrs}: {series}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("input", help="output of bench_tableN --figure")
    parser.add_argument("--out", default=".", help="directory for PNGs")
    args = parser.parse_args()

    times, sizes = parse_series(args.input)
    if not times and not sizes:
        print("no figure series found; run the bench with --figure",
              file=sys.stderr)
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; text summary:\n")
        text_summary(times, sizes)
        return 0

    os.makedirs(args.out, exist_ok=True)
    base = os.path.splitext(os.path.basename(args.input))[0]

    # Execution-time figure (paper Figures 2/4/6): one panel per |R|.
    attrs_list = sorted({a for a, _, _, _ in times})
    if attrs_list:
        fig, axes = plt.subplots(1, len(attrs_list),
                                 figsize=(4 * len(attrs_list), 3.2),
                                 squeeze=False)
        for ax, attrs in zip(axes[0], attrs_list):
            for algo in ("depminer", "depminer2", "tane"):
                pts = sorted((t, s) for a, al, t, s in times
                             if a == attrs and al == algo and s is not None)
                if pts:
                    ax.plot([p[0] for p in pts], [p[1] for p in pts],
                            marker="o", label=algo)
            ax.set_title(f"|R| = {attrs}")
            ax.set_xlabel("tuples")
            ax.set_ylabel("seconds")
            ax.legend()
        fig.tight_layout()
        path = os.path.join(args.out, f"{base}_times.png")
        fig.savefig(path, dpi=120)
        print(f"wrote {path}")

    # Armstrong-size figure (paper Figures 3/5/7).
    if sizes:
        fig, ax = plt.subplots(figsize=(5, 3.5))
        for attrs in sorted({a for a, _, _ in sizes}):
            pts = sorted((t, s) for a, t, s in sizes if a == attrs)
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                    label=f"|R| = {attrs}")
        ax.set_xlabel("tuples of the input relation")
        ax.set_ylabel("tuples of the Armstrong relation")
        ax.legend()
        fig.tight_layout()
        path = os.path.join(args.out, f"{base}_armstrong.png")
        fig.savefig(path, dpi=120)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
