// Paper-scale corpus benchmark: every dataset of PaperScaleCorpus() —
// the §7 Tables 3–5 regime (tuple, attribute and correlation sweeps plus
// the fixed-domain and Zipf-skewed points) — measured per pipeline phase
// (partition stripping, both agree-set algorithms, the CMAX_SET
// dominance stage, and the end-to-end Dep-Miner mine) at each requested
// thread count. Times are medians over --reps runs; results are verified
// byte-identical across thread counts before any time is reported, so a
// scheduling bug can never hide behind a speedup.
//
// Each dataset also gets an arity sweep — TANE and Dep-Miner at LHS caps
// k ∈ {∞, 2, 3} (1 thread, no cache, so the numbers isolate the pruning)
// with the capped covers verified equal to the unbounded cover filtered
// to |lhs| ≤ k — and a partition-cache leg (TANE cold vs. warm through
// one PartitionCache, hit/miss counts reported).
//
// Flags: --scale=F      corpus scale factor (1.0 = the paper's regime;
//                       scripts/check.sh smokes with a tiny fraction)
//        --seed=N --threads=1,2,8 --reps=N
//        --arity=K      run the arity sweep at {K} only and skip the
//                       unbounded legs + cache legs (the cheap smoke mode
//                       scripts/check.sh exercises)
//        --json=PATH    also emit machine-readable results
//        (scripts/bench_scale.sh writes BENCH_scale.json)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/arg_parser.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "partition/partition_database.h"
#include "report/json_writer.h"
#include "tane/tane.h"

using namespace depminer;

namespace {

/// Median wall-clock seconds of `fn` over `reps` runs (no warm-up: every
/// phase here is preceded by the generation and stripping of the same
/// data, so caches are in a steady state by the first rep).
template <typename Fn>
double MedianSeconds(size_t reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool SameAgreeResult(const AgreeSetResult& a, const AgreeSetResult& b) {
  return a.sets == b.sets && a.contains_empty == b.contains_empty &&
         a.couples_examined == b.couples_examined;
}

/// One measured row: one dataset at one thread count.
struct Row {
  size_t threads = 0;
  double strip_s = 0;
  double agree2_s = 0;
  double agree3_s = 0;
  double cmax_s = 0;
  double depminer_s = 0;
};

/// One measured arity-sweep point: TANE and Dep-Miner at one LHS cap
/// (0 = unbounded), single-threaded and uncached.
struct AritySample {
  size_t arity = 0;
  double tane_s = 0;
  double depminer_s = 0;
  size_t tane_pruned = 0;  ///< lattice joins the cap kept un-generated
  size_t lhs_pruned = 0;   ///< transversal joins the cap kept un-generated
  size_t fds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const double scale = parser.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const std::vector<int64_t> threads = parser.GetIntList("threads", {1, 2, 8});
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(parser.GetInt("reps", 3)));
  const std::string json_path = parser.GetString("json", "");
  // The default sweep runs the unbounded reference first so the capped
  // covers can be verified against it; --arity=K restricts the sweep to
  // {K} (no reference, no cache legs) for the seconds-cheap smoke.
  const bool capped_only = parser.Has("arity");
  std::vector<int64_t> arity_sweep{0, 2, 3};
  if (capped_only) {
    const int64_t k = parser.GetInt("arity", 3);
    if (k <= 0) {
      std::fprintf(stderr, "--arity must be a positive integer\n");
      return 1;
    }
    arity_sweep = {k};
  }

  if (scale <= 0.0) {
    std::fprintf(stderr, "--scale must be positive\n");
    return 1;
  }
  const std::vector<CorpusSpec> corpus = PaperScaleCorpus(scale, seed);
  const size_t max_threads = static_cast<size_t>(
      *std::max_element(threads.begin(), threads.end()));

  std::printf("== Paper-scale corpus (scale=%g, %zu datasets, %zu cores "
              "available, median of %zu) ==\n",
              scale, corpus.size(), DefaultThreadCount(), reps);

  JsonWriter json;
  json.OpenObject();
  json.Key("bench").Value("scale");
  json.Key("scale").Value(scale);
  json.Key("seed").Value(static_cast<uint64_t>(seed));
  json.Key("hardware_threads")
      .Value(static_cast<uint64_t>(DefaultThreadCount()));
  if (DefaultThreadCount() == 1) {
    // Loud and machine-readable: thread-scaling numbers from this run
    // mean nothing — every lane count shares one core.
    json.Key("warning").Value("hardware_threads==1");
    std::printf("WARNING: hardware_threads==1 — speedups are unmeasurable "
                "on this machine\n");
  }
  json.Key("reps").Value(static_cast<uint64_t>(reps));
  json.Key("datasets").OpenArray();

  for (const CorpusSpec& spec : corpus) {
    SyntheticConfig config = spec.config;
    config.num_threads = max_threads;
    Stopwatch gen_timer;
    Result<Relation> data = GenerateSynthetic(config);
    const double gen_s = gen_timer.ElapsedSeconds();
    if (!data.ok()) {
      std::fprintf(stderr, "datagen[%s]: %s\n", spec.name.c_str(),
                   data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();
    std::printf("-- %s (|R|=%zu, |r|=%zu, gen %.3fs)\n", spec.name.c_str(),
                r.num_attributes(), r.num_tuples(), gen_s);
    std::printf("%-10s %-10s %-10s %-10s %-10s %-10s\n", "threads", "strip_s",
                "agree2_s", "agree3_s", "cmax_s", "depminer_s");

    FdSet fd_reference;
    AgreeSetResult agree2_reference;
    AgreeSetResult agree3_reference;
    MaxSetResult cmax_reference;
    std::vector<Row> rows;
    for (int64_t t : threads) {
      Row row;
      row.threads = static_cast<size_t>(t);

      StrippedPartitionDatabase db;
      row.strip_s = MedianSeconds(reps, [&] {
        db = StrippedPartitionDatabase::FromRelation(r, row.threads);
      });

      AgreeSetOptions agree_options;
      agree_options.num_threads = row.threads;
      AgreeSetResult agree2;
      row.agree2_s = MedianSeconds(
          reps, [&] { agree2 = ComputeAgreeSetsCouples(db, agree_options); });
      AgreeSetResult agree3;
      row.agree3_s = MedianSeconds(reps, [&] {
        agree3 = ComputeAgreeSetsIdentifiers(db, agree_options);
      });

      MaxSetResult cmax;
      row.cmax_s = MedianSeconds(
          reps, [&] { cmax = ComputeMaxSets(agree3, row.threads); });

      DepMinerOptions dm_options;
      dm_options.num_threads = row.threads;
      dm_options.build_armstrong = false;
      Result<DepMinerResult> mined = Status::OK();
      row.depminer_s = MedianSeconds(
          reps, [&] { mined = MineDependencies(r, dm_options); });
      if (!mined.ok()) {
        std::fprintf(stderr, "dep-miner[%s]: %s\n", spec.name.c_str(),
                     mined.status().ToString().c_str());
        return 1;
      }

      if (rows.empty()) {
        fd_reference = mined.value().fds;
        agree2_reference = agree2;
        agree3_reference = agree3;
        cmax_reference = cmax;
      }
      if (!SameAgreeResult(agree2, agree2_reference) ||
          !SameAgreeResult(agree3, agree3_reference) ||
          cmax.max_sets != cmax_reference.max_sets ||
          cmax.cmax_sets != cmax_reference.cmax_sets ||
          mined.value().fds.fds() != fd_reference.fds()) {
        std::fprintf(stderr, "MISMATCH on %s at %lld threads\n",
                     spec.name.c_str(), static_cast<long long>(t));
        return 1;
      }

      std::printf("%-10lld %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
                  static_cast<long long>(t), row.strip_s, row.agree2_s,
                  row.agree3_s, row.cmax_s, row.depminer_s);
      rows.push_back(row);
    }

    // Arity sweep: 1 thread, no cache, so the per-cap times isolate what
    // the pruning alone buys. A capped time is only reported once the
    // capped cover is verified bit-equal to (a) the other miner's capped
    // cover and (b) the unbounded cover filtered to |lhs| ≤ k.
    std::printf("%-10s %-10s %-10s %-14s %-14s %-8s\n", "arity", "tane_s",
                "depminer_s", "tane_pruned", "lhs_pruned", "fds");
    std::vector<AritySample> arity_rows;
    FdSet unbounded_cover;
    bool have_unbounded = false;
    for (int64_t k : arity_sweep) {
      AritySample sample;
      sample.arity = static_cast<size_t>(k);

      TaneOptions tane_options;
      tane_options.num_threads = 1;
      tane_options.mining.max_lhs_arity = sample.arity;
      Result<TaneResult> tane = Status::OK();
      sample.tane_s =
          MedianSeconds(reps, [&] { tane = TaneDiscover(r, tane_options); });
      if (!tane.ok()) {
        std::fprintf(stderr, "tane[%s,k=%zu]: %s\n", spec.name.c_str(),
                     sample.arity, tane.status().ToString().c_str());
        return 1;
      }
      sample.tane_pruned = tane.value().stats.candidates_pruned;

      DepMinerOptions dm_options;
      dm_options.num_threads = 1;
      dm_options.build_armstrong = false;
      dm_options.mining.max_lhs_arity = sample.arity;
      Result<DepMinerResult> dm = Status::OK();
      sample.depminer_s =
          MedianSeconds(reps, [&] { dm = MineDependencies(r, dm_options); });
      if (!dm.ok()) {
        std::fprintf(stderr, "dep-miner[%s,k=%zu]: %s\n", spec.name.c_str(),
                     sample.arity, dm.status().ToString().c_str());
        return 1;
      }
      sample.lhs_pruned = dm.value().lhs.stats.candidates_pruned;
      sample.fds = tane.value().fds.size();

      if (tane.value().fds.fds() != dm.value().fds.fds()) {
        std::fprintf(stderr, "ARITY MISMATCH on %s at k=%zu: tane != depminer\n",
                     spec.name.c_str(), sample.arity);
        return 1;
      }
      if (sample.arity == 0) {
        unbounded_cover = tane.value().fds;
        have_unbounded = true;
      } else if (have_unbounded) {
        std::vector<FunctionalDependency> kept;
        for (const FunctionalDependency& fd : unbounded_cover.fds()) {
          if (fd.lhs.Count() <= sample.arity) kept.push_back(fd);
        }
        if (tane.value().fds.fds() !=
            FdSet(r.num_attributes(), kept).fds()) {
          std::fprintf(stderr,
                       "ARITY MISMATCH on %s at k=%zu: capped != filtered "
                       "unbounded cover\n",
                       spec.name.c_str(), sample.arity);
          return 1;
        }
      }

      const std::string cap_tag =
          sample.arity == 0 ? "inf" : std::to_string(sample.arity);
      std::printf("%-10s %-10.3f %-10.3f %-14zu %-14zu %-8zu\n",
                  cap_tag.c_str(), sample.tane_s, sample.depminer_s,
                  sample.tane_pruned, sample.lhs_pruned, sample.fds);
      arity_rows.push_back(sample);
    }

    // Partition-cache leg: the same unbounded TANE run, cold (populating
    // one PartitionCache) then warm (probing it). Skipped in --arity smoke
    // mode along with the unbounded sweep legs.
    double cache_cold_s = 0, cache_warm_s = 0;
    PartitionCache::Stats cache_stats;
    bool cache_measured = false;
    if (!capped_only) {
      const StrippedPartitionDatabase cache_db =
          StrippedPartitionDatabase::FromRelation(r, 1);
      PartitionCache cache(&cache_db);
      TaneOptions cached_options;
      cached_options.num_threads = 1;
      cached_options.partition_cache = &cache;
      Stopwatch cold;
      Result<TaneResult> cold_run = TaneDiscover(r, cached_options);
      cache_cold_s = cold.ElapsedSeconds();
      Stopwatch warm;
      Result<TaneResult> warm_run = TaneDiscover(r, cached_options);
      cache_warm_s = warm.ElapsedSeconds();
      if (!cold_run.ok() || !warm_run.ok() ||
          cold_run.value().fds.fds() != warm_run.value().fds.fds() ||
          (have_unbounded &&
           cold_run.value().fds.fds() != unbounded_cover.fds())) {
        std::fprintf(stderr, "CACHE MISMATCH on %s\n", spec.name.c_str());
        return 1;
      }
      cache_stats = cache.stats();
      cache_measured = true;
      std::printf("cache: cold %.3fs warm %.3fs (hits %zu, misses %zu, "
                  "hit rate %.0f%%)\n",
                  cache_cold_s, cache_warm_s, cache_stats.hits,
                  cache_stats.misses, cache_stats.HitRate() * 100.0);
    }

    const Row& first = rows.front();
    const Row& last = rows.back();
    json.OpenObject();
    json.Key("name").Value(spec.name);
    json.Key("attrs").Value(static_cast<uint64_t>(r.num_attributes()));
    json.Key("tuples").Value(static_cast<uint64_t>(r.num_tuples()));
    json.Key("identical_rate").Value(spec.config.identical_rate);
    json.Key("fixed_domain")
        .Value(static_cast<uint64_t>(spec.config.fixed_domain));
    json.Key("zipf_exponent").Value(spec.config.zipf_exponent);
    json.Key("gen_s").Value(gen_s);
    json.Key("results").OpenArray();
    for (const Row& row : rows) {
      json.OpenObject();
      json.Key("threads").Value(static_cast<uint64_t>(row.threads));
      json.Key("strip_s").Value(row.strip_s);
      json.Key("agree2_s").Value(row.agree2_s);
      json.Key("agree3_s").Value(row.agree3_s);
      json.Key("cmax_s").Value(row.cmax_s);
      json.Key("depminer_s").Value(row.depminer_s);
      json.Key("identical").Value(true);
      json.CloseObject();
    }
    json.CloseArray();
    json.Key("agree2_speedup")
        .Value(last.agree2_s > 0 ? first.agree2_s / last.agree2_s : 0.0);
    json.Key("agree3_speedup")
        .Value(last.agree3_s > 0 ? first.agree3_s / last.agree3_s : 0.0);
    json.Key("cmax_speedup")
        .Value(last.cmax_s > 0 ? first.cmax_s / last.cmax_s : 0.0);
    json.Key("arity_sweep").OpenArray();
    for (const AritySample& sample : arity_rows) {
      json.OpenObject();
      json.Key("arity").Value(static_cast<uint64_t>(sample.arity));
      json.Key("tane_s").Value(sample.tane_s);
      json.Key("depminer_s").Value(sample.depminer_s);
      json.Key("tane_candidates_pruned")
          .Value(static_cast<uint64_t>(sample.tane_pruned));
      json.Key("lhs_candidates_pruned")
          .Value(static_cast<uint64_t>(sample.lhs_pruned));
      json.Key("fds").Value(static_cast<uint64_t>(sample.fds));
      json.Key("verified_equals_filtered")
          .Value(sample.arity == 0 || have_unbounded);
      json.CloseObject();
    }
    json.CloseArray();
    // Headline ratios: unbounded over k=3, >1 means the cap paid off.
    const AritySample* k0 = nullptr;
    const AritySample* k3 = nullptr;
    for (const AritySample& sample : arity_rows) {
      if (sample.arity == 0) k0 = &sample;
      if (sample.arity == 3) k3 = &sample;
    }
    if (k0 != nullptr && k3 != nullptr) {
      json.Key("arity3_tane_speedup")
          .Value(k3->tane_s > 0 ? k0->tane_s / k3->tane_s : 0.0);
      json.Key("arity3_depminer_speedup")
          .Value(k3->depminer_s > 0 ? k0->depminer_s / k3->depminer_s : 0.0);
    }
    if (cache_measured) {
      json.Key("tane_cache").OpenObject();
      json.Key("cold_s").Value(cache_cold_s);
      json.Key("warm_s").Value(cache_warm_s);
      json.Key("hits").Value(static_cast<uint64_t>(cache_stats.hits));
      json.Key("misses").Value(static_cast<uint64_t>(cache_stats.misses));
      json.Key("inserts").Value(static_cast<uint64_t>(cache_stats.inserts));
      json.Key("evictions")
          .Value(static_cast<uint64_t>(cache_stats.evictions));
      json.Key("hit_rate_pct").Value(cache_stats.HitRate() * 100.0);
      json.CloseObject();
    }
    json.CloseObject();
  }

  json.CloseArray();
  json.CloseObject();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
