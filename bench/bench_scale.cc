// Paper-scale corpus benchmark: every dataset of PaperScaleCorpus() —
// the §7 Tables 3–5 regime (tuple, attribute and correlation sweeps plus
// the fixed-domain and Zipf-skewed points) — measured per pipeline phase
// (partition stripping, both agree-set algorithms, the CMAX_SET
// dominance stage, and the end-to-end Dep-Miner mine) at each requested
// thread count. Times are medians over --reps runs; results are verified
// byte-identical across thread counts before any time is reported, so a
// scheduling bug can never hide behind a speedup.
//
// Flags: --scale=F      corpus scale factor (1.0 = the paper's regime;
//                       scripts/check.sh smokes with a tiny fraction)
//        --seed=N --threads=1,2,8 --reps=N
//        --json=PATH    also emit machine-readable results
//        (scripts/bench_scale.sh writes BENCH_scale.json)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/arg_parser.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "report/json_writer.h"

using namespace depminer;

namespace {

/// Median wall-clock seconds of `fn` over `reps` runs (no warm-up: every
/// phase here is preceded by the generation and stripping of the same
/// data, so caches are in a steady state by the first rep).
template <typename Fn>
double MedianSeconds(size_t reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool SameAgreeResult(const AgreeSetResult& a, const AgreeSetResult& b) {
  return a.sets == b.sets && a.contains_empty == b.contains_empty &&
         a.couples_examined == b.couples_examined;
}

/// One measured row: one dataset at one thread count.
struct Row {
  size_t threads = 0;
  double strip_s = 0;
  double agree2_s = 0;
  double agree3_s = 0;
  double cmax_s = 0;
  double depminer_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const double scale = parser.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const std::vector<int64_t> threads = parser.GetIntList("threads", {1, 2, 8});
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(parser.GetInt("reps", 3)));
  const std::string json_path = parser.GetString("json", "");

  if (scale <= 0.0) {
    std::fprintf(stderr, "--scale must be positive\n");
    return 1;
  }
  const std::vector<CorpusSpec> corpus = PaperScaleCorpus(scale, seed);
  const size_t max_threads = static_cast<size_t>(
      *std::max_element(threads.begin(), threads.end()));

  std::printf("== Paper-scale corpus (scale=%g, %zu datasets, %zu cores "
              "available, median of %zu) ==\n",
              scale, corpus.size(), DefaultThreadCount(), reps);

  JsonWriter json;
  json.OpenObject();
  json.Key("bench").Value("scale");
  json.Key("scale").Value(scale);
  json.Key("seed").Value(static_cast<uint64_t>(seed));
  json.Key("hardware_threads")
      .Value(static_cast<uint64_t>(DefaultThreadCount()));
  if (DefaultThreadCount() == 1) {
    // Loud and machine-readable: thread-scaling numbers from this run
    // mean nothing — every lane count shares one core.
    json.Key("warning").Value("hardware_threads==1");
    std::printf("WARNING: hardware_threads==1 — speedups are unmeasurable "
                "on this machine\n");
  }
  json.Key("reps").Value(static_cast<uint64_t>(reps));
  json.Key("datasets").OpenArray();

  for (const CorpusSpec& spec : corpus) {
    SyntheticConfig config = spec.config;
    config.num_threads = max_threads;
    Stopwatch gen_timer;
    Result<Relation> data = GenerateSynthetic(config);
    const double gen_s = gen_timer.ElapsedSeconds();
    if (!data.ok()) {
      std::fprintf(stderr, "datagen[%s]: %s\n", spec.name.c_str(),
                   data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();
    std::printf("-- %s (|R|=%zu, |r|=%zu, gen %.3fs)\n", spec.name.c_str(),
                r.num_attributes(), r.num_tuples(), gen_s);
    std::printf("%-10s %-10s %-10s %-10s %-10s %-10s\n", "threads", "strip_s",
                "agree2_s", "agree3_s", "cmax_s", "depminer_s");

    FdSet fd_reference;
    AgreeSetResult agree2_reference;
    AgreeSetResult agree3_reference;
    MaxSetResult cmax_reference;
    std::vector<Row> rows;
    for (int64_t t : threads) {
      Row row;
      row.threads = static_cast<size_t>(t);

      StrippedPartitionDatabase db;
      row.strip_s = MedianSeconds(reps, [&] {
        db = StrippedPartitionDatabase::FromRelation(r, row.threads);
      });

      AgreeSetOptions agree_options;
      agree_options.num_threads = row.threads;
      AgreeSetResult agree2;
      row.agree2_s = MedianSeconds(
          reps, [&] { agree2 = ComputeAgreeSetsCouples(db, agree_options); });
      AgreeSetResult agree3;
      row.agree3_s = MedianSeconds(reps, [&] {
        agree3 = ComputeAgreeSetsIdentifiers(db, agree_options);
      });

      MaxSetResult cmax;
      row.cmax_s = MedianSeconds(
          reps, [&] { cmax = ComputeMaxSets(agree3, row.threads); });

      DepMinerOptions dm_options;
      dm_options.num_threads = row.threads;
      dm_options.build_armstrong = false;
      Result<DepMinerResult> mined = Status::OK();
      row.depminer_s = MedianSeconds(
          reps, [&] { mined = MineDependencies(r, dm_options); });
      if (!mined.ok()) {
        std::fprintf(stderr, "dep-miner[%s]: %s\n", spec.name.c_str(),
                     mined.status().ToString().c_str());
        return 1;
      }

      if (rows.empty()) {
        fd_reference = mined.value().fds;
        agree2_reference = agree2;
        agree3_reference = agree3;
        cmax_reference = cmax;
      }
      if (!SameAgreeResult(agree2, agree2_reference) ||
          !SameAgreeResult(agree3, agree3_reference) ||
          cmax.max_sets != cmax_reference.max_sets ||
          cmax.cmax_sets != cmax_reference.cmax_sets ||
          mined.value().fds.fds() != fd_reference.fds()) {
        std::fprintf(stderr, "MISMATCH on %s at %lld threads\n",
                     spec.name.c_str(), static_cast<long long>(t));
        return 1;
      }

      std::printf("%-10lld %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
                  static_cast<long long>(t), row.strip_s, row.agree2_s,
                  row.agree3_s, row.cmax_s, row.depminer_s);
      rows.push_back(row);
    }

    const Row& first = rows.front();
    const Row& last = rows.back();
    json.OpenObject();
    json.Key("name").Value(spec.name);
    json.Key("attrs").Value(static_cast<uint64_t>(r.num_attributes()));
    json.Key("tuples").Value(static_cast<uint64_t>(r.num_tuples()));
    json.Key("identical_rate").Value(spec.config.identical_rate);
    json.Key("fixed_domain")
        .Value(static_cast<uint64_t>(spec.config.fixed_domain));
    json.Key("zipf_exponent").Value(spec.config.zipf_exponent);
    json.Key("gen_s").Value(gen_s);
    json.Key("results").OpenArray();
    for (const Row& row : rows) {
      json.OpenObject();
      json.Key("threads").Value(static_cast<uint64_t>(row.threads));
      json.Key("strip_s").Value(row.strip_s);
      json.Key("agree2_s").Value(row.agree2_s);
      json.Key("agree3_s").Value(row.agree3_s);
      json.Key("cmax_s").Value(row.cmax_s);
      json.Key("depminer_s").Value(row.depminer_s);
      json.Key("identical").Value(true);
      json.CloseObject();
    }
    json.CloseArray();
    json.Key("agree2_speedup")
        .Value(last.agree2_s > 0 ? first.agree2_s / last.agree2_s : 0.0);
    json.Key("agree3_speedup")
        .Value(last.agree3_s > 0 ? first.agree3_s / last.agree3_s : 0.0);
    json.Key("cmax_speedup")
        .Value(last.cmax_s > 0 ? first.cmax_s / last.cmax_s : 0.0);
    json.CloseObject();
  }

  json.CloseArray();
  json.CloseObject();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
