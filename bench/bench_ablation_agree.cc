// Ablation: the three agree-set computations across couple densities.
//
// The paper motivates Algorithm 3 ("Dep-Miner 2") by the cost of
// Algorithm 2 when equivalence classes are large or numerous, and both by
// the cost of the naive all-pairs computation. This bench sweeps the
// correlation parameter c (which controls couple density) and reports
// each computation's time plus the couple counts, and additionally
// quantifies the MC (maximal-class) pruning of Lemma 1 by running
// Algorithm 2 with the pruning disabled.
//
// Flags: --attrs=N --tuples=N --rates=0,10,30,50,70 (percent) --seed=N
//        --skip-naive (naive is quadratic; skipped above 5000 tuples by
//        default)

#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "core/agree_sets.h"
#include "datagen/synthetic.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 15));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 3000));
  const std::vector<int64_t> rates =
      parser.GetIntList("rates", {0, 10, 30, 50, 70});
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const bool skip_naive =
      parser.GetBool("skip-naive", tuples > 5000);

  std::printf("== Ablation: agree-set algorithms (|R|=%zu, |r|=%zu) ==\n",
              attrs, tuples);
  std::printf("%-8s %-10s %-12s %-14s %-12s %-10s %-10s\n", "c(%)",
              "naive_s", "couples_s", "couples_noMC_s", "identif_s",
              "couples", "agree_sets");

  for (int64_t rate : rates) {
    SyntheticConfig config;
    config.num_attributes = attrs;
    config.num_tuples = tuples;
    config.identical_rate = static_cast<double>(rate) / 100.0;
    config.seed = seed;
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();
    const StrippedPartitionDatabase db =
        StrippedPartitionDatabase::FromRelation(r);

    double naive_seconds = -1;
    if (!skip_naive) {
      Stopwatch timer;
      const AgreeSetResult naive = ComputeAgreeSetsNaive(r);
      naive_seconds = timer.ElapsedSeconds();
      (void)naive;
    }

    Stopwatch timer;
    const AgreeSetResult couples = ComputeAgreeSetsCouples(db);
    const double couples_seconds = timer.ElapsedSeconds();

    AgreeSetOptions no_mc;
    no_mc.use_maximal_classes = false;
    timer.Restart();
    const AgreeSetResult unpruned = ComputeAgreeSetsCouples(db, no_mc);
    const double no_mc_seconds = timer.ElapsedSeconds();

    timer.Restart();
    const AgreeSetResult identifiers = ComputeAgreeSetsIdentifiers(db);
    const double identifiers_seconds = timer.ElapsedSeconds();

    if (couples.sets != identifiers.sets ||
        couples.sets != unpruned.sets) {
      std::fprintf(stderr, "MISMATCH at c=%lld\n",
                   static_cast<long long>(rate));
      return 1;
    }

    char naive_cell[32];
    if (naive_seconds < 0) {
      std::snprintf(naive_cell, sizeof(naive_cell), "(skipped)");
    } else {
      std::snprintf(naive_cell, sizeof(naive_cell), "%.3f", naive_seconds);
    }
    std::printf("%-8lld %-10s %-12.3f %-14.3f %-12.3f %-10zu %-10zu\n",
                static_cast<long long>(rate), naive_cell, couples_seconds,
                no_mc_seconds, identifiers_seconds,
                couples.couples_examined, couples.sets.size());
  }
  return 0;
}
