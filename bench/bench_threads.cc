// Thread-scaling of the parallelized pipeline stages: the agree-set
// stage of both Dep-Miner algorithms (measured in isolation on a
// pre-built stripped partition database), the CMAX_SET stage (measured
// in isolation on a pre-computed agree-set result), the end-to-end
// Dep-Miner pipeline, and TANE's per-level partition products. Results
// are verified identical across thread counts before times are
// reported.
//
// Flags: --attrs=N --tuples=N --rate=PERCENT --seed=N --threads=1,2,4,8
//        --json=PATH   also emit machine-readable results
//        (scripts/bench_agree.sh writes BENCH_agree_threads.json)

#include <cstdio>
#include <string>

#include "common/arg_parser.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "report/json_writer.h"
#include "tane/tane.h"

using namespace depminer;

namespace {

/// One measured row of the scaling table.
struct Row {
  size_t threads = 0;
  double agree_couples_s = 0;
  double agree_identifiers_s = 0;
  double cmax_s = 0;
  double depminer_s = 0;
  double tane_s = 0;
};

bool SameAgreeResult(const AgreeSetResult& a, const AgreeSetResult& b) {
  return a.sets == b.sets && a.contains_empty == b.contains_empty &&
         a.couples_examined == b.couples_examined;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 40));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 10000));
  const double rate = parser.GetDouble("rate", 50.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  std::vector<int64_t> threads = parser.GetIntList("threads", {1, 2, 4, 8});
  const std::string json_path = parser.GetString("json", "");

  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = seed;
  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Relation& r = data.value();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r, DefaultThreadCount());

  std::printf("== Thread scaling (|R|=%zu, |r|=%zu, c=%.0f%%, %zu cores "
              "available) ==\n",
              attrs, tuples, rate * 100, DefaultThreadCount());
  std::printf("%-10s %-16s %-16s %-10s %-14s %-10s\n", "threads",
              "agree2_s", "agree3_s", "cmax_s", "depminer_s", "tane_s");

  FdSet fd_reference;
  AgreeSetResult couples_reference;
  AgreeSetResult identifiers_reference;
  MaxSetResult cmax_reference;
  std::vector<Row> rows;
  for (int64_t t : threads) {
    Row row;
    row.threads = static_cast<size_t>(t);

    // The agree-set stage in isolation — the pipeline cost §6 singles
    // out — on the shared pre-built partition database.
    AgreeSetOptions agree_options;
    agree_options.num_threads = row.threads;
    Stopwatch timer;
    const AgreeSetResult couples = ComputeAgreeSetsCouples(db, agree_options);
    row.agree_couples_s = timer.ElapsedSeconds();
    timer.Restart();
    const AgreeSetResult identifiers =
        ComputeAgreeSetsIdentifiers(db, agree_options);
    row.agree_identifiers_s = timer.ElapsedSeconds();

    // The CMAX_SET stage in isolation: the shared-pass dominance kernel
    // deriving every max(dep(r), A) over `row.threads` lanes.
    timer.Restart();
    const MaxSetResult cmax = ComputeMaxSets(identifiers, row.threads);
    row.cmax_s = timer.ElapsedSeconds();

    DepMinerOptions dm_options;
    dm_options.num_threads = row.threads;
    dm_options.build_armstrong = false;
    timer.Restart();
    Result<DepMinerResult> mined = MineDependencies(r, dm_options);
    row.depminer_s = timer.ElapsedSeconds();
    if (!mined.ok()) {
      std::fprintf(stderr, "dep-miner: %s\n",
                   mined.status().ToString().c_str());
      return 1;
    }

    TaneOptions tane_options;
    tane_options.num_threads = row.threads;
    timer.Restart();
    Result<TaneResult> tane = TaneDiscover(r, tane_options);
    row.tane_s = timer.ElapsedSeconds();
    if (!tane.ok()) {
      std::fprintf(stderr, "tane: %s\n", tane.status().ToString().c_str());
      return 1;
    }

    // Byte-identical output at every measured thread count, for both
    // agree-set algorithms and both end-to-end miners.
    if (rows.empty()) {
      fd_reference = mined.value().fds;
      couples_reference = couples;
      identifiers_reference = identifiers;
      cmax_reference = cmax;
    }
    if (!SameAgreeResult(couples, couples_reference) ||
        !SameAgreeResult(identifiers, identifiers_reference) ||
        cmax.max_sets != cmax_reference.max_sets ||
        cmax.cmax_sets != cmax_reference.cmax_sets ||
        mined.value().fds.fds() != fd_reference.fds() ||
        tane.value().fds.fds() != fd_reference.fds()) {
      std::fprintf(stderr, "MISMATCH at %lld threads\n",
                   static_cast<long long>(t));
      return 1;
    }

    std::printf("%-10lld %-16.3f %-16.3f %-10.3f %-14.3f %-10.3f\n",
                static_cast<long long>(t), row.agree_couples_s,
                row.agree_identifiers_s, row.cmax_s, row.depminer_s,
                row.tane_s);
    rows.push_back(row);
  }

  if (!json_path.empty() && !rows.empty()) {
    const Row& first = rows.front();
    const Row& last = rows.back();
    JsonWriter json;
    json.OpenObject();
    json.Key("bench").Value("agree_threads");
    json.Key("attrs").Value(static_cast<uint64_t>(attrs));
    json.Key("tuples").Value(static_cast<uint64_t>(tuples));
    json.Key("identical_rate").Value(rate);
    json.Key("seed").Value(static_cast<uint64_t>(seed));
    json.Key("hardware_threads")
        .Value(static_cast<uint64_t>(DefaultThreadCount()));
    if (DefaultThreadCount() == 1) {
      // Loud and machine-readable: every lane count below shares one
      // core, so the speedup columns of this run mean nothing.
      json.Key("warning").Value("hardware_threads==1");
      std::fprintf(stderr,
                   "WARNING: hardware_threads==1 — speedups are "
                   "unmeasurable on this machine\n");
    }
    json.Key("results").OpenArray();
    for (const Row& row : rows) {
      json.OpenObject();
      json.Key("threads").Value(static_cast<uint64_t>(row.threads));
      json.Key("agree_couples_s").Value(row.agree_couples_s);
      json.Key("agree_identifiers_s").Value(row.agree_identifiers_s);
      json.Key("cmax_s").Value(row.cmax_s);
      json.Key("depminer_s").Value(row.depminer_s);
      json.Key("tane_s").Value(row.tane_s);
      json.Key("identical").Value(true);
      json.CloseObject();
    }
    json.CloseArray();
    // Speedups of the agree-set stage: first row (expected: 1 thread)
    // over last row (expected: the largest measured count).
    json.Key("agree_couples_speedup")
        .Value(last.agree_couples_s > 0
                   ? first.agree_couples_s / last.agree_couples_s
                   : 0.0);
    json.Key("agree_identifiers_speedup")
        .Value(last.agree_identifiers_s > 0
                   ? first.agree_identifiers_s / last.agree_identifiers_s
                   : 0.0);
    json.Key("cmax_speedup")
        .Value(last.cmax_s > 0 ? first.cmax_s / last.cmax_s : 0.0);
    json.CloseObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
