// Thread-scaling of the parallelized pipeline stages: Dep-Miner's
// per-attribute extraction + transversal searches, and TANE's per-level
// partition products. Results are verified identical across thread
// counts before times are reported.
//
// Flags: --attrs=N --tuples=N --rate=PERCENT --seed=N --threads=1,2,4,8

#include <cstdio>

#include "common/arg_parser.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "datagen/synthetic.h"
#include "tane/tane.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 40));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 10000));
  const double rate = parser.GetDouble("rate", 50.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  std::vector<int64_t> threads = parser.GetIntList("threads", {1, 2, 4, 8});

  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = seed;
  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Relation& r = data.value();

  std::printf("== Thread scaling (|R|=%zu, |r|=%zu, c=%.0f%%, %zu cores "
              "available) ==\n",
              attrs, tuples, rate * 100, DefaultThreadCount());
  std::printf("%-10s %-14s %-10s\n", "threads", "depminer_s", "tane_s");

  FdSet reference;
  for (int64_t t : threads) {
    DepMinerOptions dm_options;
    dm_options.num_threads = static_cast<size_t>(t);
    dm_options.build_armstrong = false;
    Stopwatch timer;
    Result<DepMinerResult> mined = MineDependencies(r, dm_options);
    const double dm_seconds = timer.ElapsedSeconds();
    if (!mined.ok()) {
      std::fprintf(stderr, "dep-miner: %s\n",
                   mined.status().ToString().c_str());
      return 1;
    }

    TaneOptions tane_options;
    tane_options.num_threads = static_cast<size_t>(t);
    timer.Restart();
    Result<TaneResult> tane = TaneDiscover(r, tane_options);
    const double tane_seconds = timer.ElapsedSeconds();
    if (!tane.ok()) {
      std::fprintf(stderr, "tane: %s\n", tane.status().ToString().c_str());
      return 1;
    }

    if (reference.Empty()) {
      reference = mined.value().fds;
    }
    if (mined.value().fds.fds() != reference.fds() ||
        tane.value().fds.fds() != reference.fds()) {
      std::fprintf(stderr, "MISMATCH at %lld threads\n",
                   static_cast<long long>(t));
      return 1;
    }

    std::printf("%-10lld %-14.3f %-10.3f\n", static_cast<long long>(t),
                dm_seconds, tane_seconds);
  }
  return 0;
}
