// Reproduces the paper's §5.1 argument: extending TANE with Armstrong
// relations requires inverting lhs families back into maximal sets
// (cmax = Tr(lhs), by Tr(Tr(H)) = H), so Armstrong construction happens
// *after* and *on top of* discovery — whereas Dep-Miner's combined
// pipeline gets the maximal sets for free on the way to the FDs ("without
// additional execution time").
//
// For each workload this bench reports:
//   dm_total       Dep-Miner end-to-end (FDs + Armstrong)
//   dm_armstrong   of which Armstrong construction (Equation 2 assembly)
//   tane_total     TANE discovery + Tr-inversion + Armstrong
//   tane_invert    of which the Tr(lhs) inversion
//
// Flags: --attrs=10,20,30 --tuples=N --rate=PERCENT --seed=N

#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "core/inversion.h"
#include "datagen/synthetic.h"
#include "tane/tane.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const std::vector<int64_t> attr_axis =
      parser.GetIntList("attrs", {10, 20, 30});
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 5000));
  const double rate = parser.GetDouble("rate", 30.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));

  std::printf("== Armstrong construction routes: combined (Dep-Miner) vs "
              "post-hoc (TANE + Tr) ==\n");
  std::printf("(|r|=%zu, c=%.0f%%)\n", tuples, rate * 100);
  std::printf("%-8s %-10s %-14s %-10s %-12s %-10s\n", "|R|", "dm_total",
              "dm_armstrong", "tane_total", "tane_invert", "size");

  for (int64_t attrs : attr_axis) {
    SyntheticConfig config;
    config.num_attributes = static_cast<size_t>(attrs);
    config.num_tuples = tuples;
    config.identical_rate = rate;
    config.seed = seed;
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
      return 1;
    }
    const Relation& relation = data.value();

    // Route 1: Dep-Miner, combined.
    Stopwatch timer;
    Result<DepMinerResult> mined = MineDependencies(relation);
    const double dm_total = timer.ElapsedSeconds();
    if (!mined.ok()) {
      std::fprintf(stderr, "dep-miner: %s\n",
                   mined.status().ToString().c_str());
      return 1;
    }

    // Route 2: TANE, then invert lhs families, then build.
    timer.Restart();
    Result<TaneResult> tane = TaneDiscover(relation);
    if (!tane.ok()) {
      std::fprintf(stderr, "tane: %s\n", tane.status().ToString().c_str());
      return 1;
    }
    Stopwatch invert_timer;
    const std::vector<AttributeSet> max_sets =
        AllMaxSetsFromFds(tane.value().fds);
    const double tane_invert = invert_timer.ElapsedSeconds();
    Result<Relation> armstrong = BuildRealWorldArmstrong(relation, max_sets);
    const double tane_total = timer.ElapsedSeconds();

    if (max_sets != mined.value().all_max_sets) {
      std::fprintf(stderr, "MAX-SET MISMATCH at |R|=%lld\n",
                   static_cast<long long>(attrs));
      return 1;
    }
    const size_t size = armstrong.ok() ? armstrong.value().num_tuples() : 0;
    std::printf("%-8lld %-10.3f %-14.3f %-10.3f %-12.3f %-10zu\n",
                static_cast<long long>(attrs), dm_total,
                mined.value().stats.armstrong_seconds, tane_total,
                tane_invert, size);
  }
  return 0;
}
