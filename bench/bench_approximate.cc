// Approximate functional dependencies (TANE's g₃ mode, the capability
// the paper credits TANE with in §5.1): sweeps the error threshold ε on
// a noisy workload and reports how the discovered cover grows, plus the
// exact-mode baseline. Every reported FD is spot-verified to satisfy the
// bound.
//
// Flags: --attrs=N --tuples=N --rate=PERCENT --seed=N
//        --epsilons=0,1,2,5,10 (percent)

#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "datagen/synthetic.h"
#include "fd/satisfaction.h"
#include "tane/tane.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 12));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 3000));
  const double rate = parser.GetDouble("rate", 40.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const std::vector<int64_t> epsilons =
      parser.GetIntList("epsilons", {0, 1, 2, 5, 10});

  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = seed;
  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Relation& r = data.value();

  std::printf("== Approximate FDs, TANE g3 mode (|R|=%zu, |r|=%zu, "
              "c=%.0f%%) ==\n",
              attrs, tuples, rate * 100);
  std::printf("%-10s %-10s %-10s %-12s\n", "eps(%)", "seconds", "fds",
              "candidates");

  size_t exact_count = 0;
  for (int64_t eps : epsilons) {
    TaneOptions options;
    options.mining.max_g3_error = static_cast<double>(eps) / 100.0;
    Stopwatch timer;
    Result<TaneResult> result = TaneDiscover(r, options);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "tane: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (eps == 0) exact_count = result.value().fds.size();

    // Spot-verify the bound on up to 200 reported FDs.
    size_t checked = 0;
    for (const FunctionalDependency& fd : result.value().fds.fds()) {
      if (checked++ >= 200) break;
      const double g3 = G3Error(r, fd.lhs, fd.rhs);
      if (g3 > options.mining.max_g3_error + 1e-12) {
        std::fprintf(stderr, "BOUND VIOLATION: %s has g3=%.4f > %.4f\n",
                     fd.ToString().c_str(), g3, options.mining.max_g3_error);
        return 1;
      }
    }

    std::printf("%-10lld %-10.3f %-10zu %-12zu\n",
                static_cast<long long>(eps), seconds,
                result.value().fds.size(),
                result.value().stats.candidates_generated);
  }
  std::printf("(exact cover: %zu FDs; approximate covers shrink the lhs "
              "sizes and typically grow the count)\n",
              exact_count);
  return 0;
}
