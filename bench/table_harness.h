#pragma once

#include <string>
#include <vector>

#include "common/arg_parser.h"

namespace depminer::bench {

/// One cell of the paper's benchmark grid.
struct CellResult {
  size_t num_attributes = 0;
  size_t num_tuples = 0;
  double depminer_seconds = -1;   ///< Algorithm 2 route; < 0 means '*'
  double depminer2_seconds = -1;  ///< Algorithm 3 route
  double tane_seconds = -1;
  size_t depminer_bytes = 0;      ///< couple-list working set (Alg. 2)
  size_t tane_bytes = 0;          ///< TANE peak partition storage
  size_t armstrong_size = 0;      ///< tuples of the real-world Armstrong
  size_t num_fds = 0;
  bool fds_agree = true;          ///< all three routes produced equal FDs
};

/// Configuration of a table run (one of the paper's Tables 3-5, which
/// also carry Figures 2-7).
struct TableConfig {
  std::string title;
  double identical_rate = 0.0;       ///< the paper's parameter c
  size_t fixed_domain = 0;           ///< --domain: absolute pool size
  double zipf_exponent = 0.0;        ///< --zipf: value skew (0 = uniform)
  std::vector<int64_t> attributes;   ///< |R| axis
  std::vector<int64_t> tuples;       ///< |r| axis
  uint64_t seed = 42;
  double timeout_seconds = 120;      ///< per-algorithm '*' cutoff
  bool figure_mode = false;          ///< emit per-series rows for plotting
  bool verify = true;                ///< cross-check the three FD sets
};

/// Parses the shared command-line interface of the table benches:
///   --attrs=10,20,30 --tuples=1000,2000 --seed=N --timeout=SECONDS
///   --figure --full --no-verify
/// `--full` switches to the paper's original grid (10..60 attributes,
/// 10k..100k tuples) — expect long runtimes.
TableConfig ParseTableArgs(int argc, const char* const* argv,
                           std::string title, double identical_rate);

/// Runs one full grid and prints the paper-style tables: execution times
/// per algorithm (Table N (a)) and real-world Armstrong sizes (Table N
/// (b)). In figure mode, also prints the per-series rows behind the
/// corresponding figures. Returns the process exit code (non-zero if some
/// verification failed).
int RunTable(const TableConfig& config);

}  // namespace depminer::bench
