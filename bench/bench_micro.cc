// Micro-benchmarks (google-benchmark) for the substrate operations the
// paper's cost model rests on: partition extraction, stripped-partition
// products, the three agree-set computations, minimal transversals, and
// closure computation.

#include <benchmark/benchmark.h>

#include "core/agree_sets.h"
#include "core/dep_miner.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "fd/fd_set.h"
#include "hypergraph/berge_transversals.h"
#include "hypergraph/levelwise_transversals.h"
#include "partition/partition_database.h"
#include "partition/partition_product.h"
#include "tane/tane.h"

namespace depminer {
namespace {

Relation MakeData(size_t attrs, size_t tuples, double rate) {
  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = 7;
  Result<Relation> r = GenerateSynthetic(config);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

void BM_StrippedPartitionExtraction(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrippedPartitionDatabase::FromRelation(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.num_tuples()) *
                          static_cast<int64_t>(r.num_attributes()));
}
BENCHMARK(BM_StrippedPartitionExtraction)
    ->Args({10, 1000})
    ->Args({10, 10000})
    ->Args({40, 10000});

void BM_PartitionProduct(benchmark::State& state) {
  const Relation r =
      MakeData(2, static_cast<size_t>(state.range(0)), 0.2);
  const StrippedPartition a = StrippedPartition::ForAttribute(r, 0);
  const StrippedPartition b = StrippedPartition::ForAttribute(r, 1);
  PartitionProductWorkspace ws(r.num_tuples());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.Product(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.num_tuples()));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MaximalEquivalenceClasses(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)), 5000, 0.4);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximalEquivalenceClasses(db));
  }
}
BENCHMARK(BM_MaximalEquivalenceClasses)->Arg(10)->Arg(30);

void BM_AgreeSetsNaive(benchmark::State& state) {
  const Relation r = MakeData(10, static_cast<size_t>(state.range(0)), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAgreeSetsNaive(r));
  }
}
BENCHMARK(BM_AgreeSetsNaive)->Arg(200)->Arg(1000);

void BM_AgreeSetsCouples(benchmark::State& state) {
  const Relation r = MakeData(10, static_cast<size_t>(state.range(0)), 0.3);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAgreeSetsCouples(db));
  }
}
BENCHMARK(BM_AgreeSetsCouples)->Arg(200)->Arg(1000)->Arg(10000);

void BM_AgreeSetsIdentifiers(benchmark::State& state) {
  const Relation r = MakeData(10, static_cast<size_t>(state.range(0)), 0.3);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAgreeSetsIdentifiers(db));
  }
}
BENCHMARK(BM_AgreeSetsIdentifiers)->Arg(200)->Arg(1000)->Arg(10000);

void BM_LevelwiseTransversals(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)), 2000, 0.5);
  const MaxSetResult max = ComputeMaxSets(ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r)));
  for (auto _ : state) {
    for (AttributeId a = 0; a < max.num_attributes; ++a) {
      Hypergraph h(max.num_attributes, max.cmax_sets[a]);
      benchmark::DoNotOptimize(LevelwiseMinimalTransversals(h));
    }
  }
}
BENCHMARK(BM_LevelwiseTransversals)->Arg(10)->Arg(20);

void BM_BergeTransversals(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)), 2000, 0.5);
  const MaxSetResult max = ComputeMaxSets(ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r)));
  for (auto _ : state) {
    for (AttributeId a = 0; a < max.num_attributes; ++a) {
      Hypergraph h(max.num_attributes, max.cmax_sets[a]);
      benchmark::DoNotOptimize(BergeMinimalTransversals(h));
    }
  }
}
BENCHMARK(BM_BergeTransversals)->Arg(10)->Arg(20);

void BM_DepMinerEndToEnd(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)), 0.3);
  for (auto _ : state) {
    DepMinerOptions options;
    options.agree_set_algorithm = AgreeSetAlgorithm::kIdentifiers;
    benchmark::DoNotOptimize(MineDependencies(r, options));
  }
}
BENCHMARK(BM_DepMinerEndToEnd)->Args({10, 1000})->Args({20, 5000});

void BM_TaneEndToEnd(benchmark::State& state) {
  const Relation r = MakeData(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaneDiscover(r));
  }
}
BENCHMARK(BM_TaneEndToEnd)->Args({10, 1000})->Args({20, 5000});

void BM_FdClosure(benchmark::State& state) {
  // A chain A->B->...->last: closure of {A} must chase the whole chain.
  const size_t n = static_cast<size_t>(state.range(0));
  FdSet fds(n);
  for (AttributeId a = 0; a + 1 < n; ++a) {
    fds.Add(AttributeSet::Single(a), a + 1);
  }
  const AttributeSet start = AttributeSet::Single(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fds.Closure(start));
  }
}
BENCHMARK(BM_FdClosure)->Arg(10)->Arg(50)->Arg(100);

}  // namespace
}  // namespace depminer

BENCHMARK_MAIN();
