#include "table_harness.h"

#include <cstdio>

#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "datagen/synthetic.h"
#include "tane/tane.h"

namespace depminer::bench {

namespace {

/// Formats a seconds cell, using the paper's '*' for "did not finish".
std::string TimeCell(double seconds) {
  if (seconds < 0) return "*";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

CellResult RunCell(const TableConfig& config, size_t attrs, size_t tuples) {
  CellResult cell;
  cell.num_attributes = attrs;
  cell.num_tuples = tuples;

  SyntheticConfig data_config;
  data_config.num_attributes = attrs;
  data_config.num_tuples = tuples;
  data_config.identical_rate = config.identical_rate;
  data_config.fixed_domain = config.fixed_domain;
  data_config.zipf_exponent = config.zipf_exponent;
  // Distinct stream per cell so grid points are independent samples.
  data_config.seed = config.seed * 1000003 + attrs * 101 + tuples;
  Result<Relation> data = GenerateSynthetic(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 data.status().ToString().c_str());
    return cell;
  }
  const Relation& relation = data.value();

  // The '*' policy: each algorithm that exceeds the timeout (checked
  // after the fact — the algorithms are not interruptible, so keep cells
  // small) is reported as '*' and larger cells on the same axis are not
  // attempted. The paper used a two-hour threshold the same way.
  FdSet reference;
  bool have_reference = false;

  {  // Dep-Miner: Algorithm 2 (couples) route.
    DepMinerOptions options;
    options.agree_set_algorithm = AgreeSetAlgorithm::kCouples;
    Stopwatch timer;
    Result<DepMinerResult> mined = MineDependencies(relation, options);
    const double elapsed = timer.ElapsedSeconds();
    if (mined.ok() && elapsed <= config.timeout_seconds) {
      cell.depminer_seconds = elapsed;
      cell.depminer_bytes = mined.value().stats.agree_working_bytes;
      cell.num_fds = mined.value().fds.size();
      if (mined.value().armstrong.has_value()) {
        cell.armstrong_size = mined.value().armstrong->num_tuples();
      }
      reference = mined.value().fds;
      have_reference = true;
    }
  }

  {  // Dep-Miner 2: Algorithm 3 (identifier) route.
    DepMinerOptions options;
    options.agree_set_algorithm = AgreeSetAlgorithm::kIdentifiers;
    options.build_armstrong = false;
    Stopwatch timer;
    Result<DepMinerResult> mined = MineDependencies(relation, options);
    const double elapsed = timer.ElapsedSeconds();
    if (mined.ok() && elapsed <= config.timeout_seconds) {
      cell.depminer2_seconds = elapsed;
      if (config.verify && have_reference &&
          mined.value().fds.fds() != reference.fds()) {
        cell.fds_agree = false;
      }
      if (!have_reference) {
        cell.num_fds = mined.value().fds.size();
        reference = mined.value().fds;
        have_reference = true;
      }
    }
  }

  {  // TANE baseline.
    Stopwatch timer;
    Result<TaneResult> tane = TaneDiscover(relation);
    const double elapsed = timer.ElapsedSeconds();
    if (tane.ok() && elapsed <= config.timeout_seconds) {
      cell.tane_seconds = elapsed;
      cell.tane_bytes = tane.value().stats.peak_partition_bytes;
      if (config.verify && have_reference &&
          tane.value().fds.fds() != reference.fds()) {
        cell.fds_agree = false;
      }
    }
  }

  return cell;
}

void PrintTimeTable(const TableConfig& config,
                    const std::vector<std::vector<CellResult>>& grid) {
  std::printf("\n-- Execution times in seconds ('*' = exceeded %.0fs) --\n",
              config.timeout_seconds);
  std::printf("%-8s %-12s", "|r|", "algorithm");
  for (int64_t attrs : config.attributes) {
    std::printf(" |R|=%-8lld", static_cast<long long>(attrs));
  }
  std::printf("\n");
  for (size_t row = 0; row < config.tuples.size(); ++row) {
    const char* names[3] = {"Dep-Miner", "Dep-Miner 2", "TANE"};
    for (int algo = 0; algo < 3; ++algo) {
      std::printf("%-8lld %-12s",
                  static_cast<long long>(config.tuples[row]), names[algo]);
      for (size_t col = 0; col < config.attributes.size(); ++col) {
        const CellResult& cell = grid[row][col];
        const double t = algo == 0   ? cell.depminer_seconds
                         : algo == 1 ? cell.depminer2_seconds
                                     : cell.tane_seconds;
        std::printf(" %-12s", TimeCell(t).c_str());
      }
      std::printf("\n");
    }
  }
}

void PrintArmstrongTable(const TableConfig& config,
                         const std::vector<std::vector<CellResult>>& grid) {
  std::printf("\n-- Sizes of real-world Armstrong relations (tuples; '-' = "
              "Proposition 1 fails, too few distinct values) --\n");
  std::printf("%-8s", "|r|");
  for (int64_t attrs : config.attributes) {
    std::printf(" |R|=%-8lld", static_cast<long long>(attrs));
  }
  std::printf("\n");
  for (size_t row = 0; row < config.tuples.size(); ++row) {
    std::printf("%-8lld", static_cast<long long>(config.tuples[row]));
    for (size_t col = 0; col < config.attributes.size(); ++col) {
      const size_t size = grid[row][col].armstrong_size;
      if (size == 0) {
        std::printf(" %-12s", "-");
      } else {
        std::printf(" %-12zu", size);
      }
    }
    std::printf("\n");
  }
}

void PrintMemoryTable(const TableConfig& config,
                      const std::vector<std::vector<CellResult>>& grid) {
  // Not a paper table: the working-set comparison that explains the
  // paper's orderings and '*' cells on its 256 MB machine (see
  // EXPERIMENTS.md). Dep-Miner's dominant structure is the couple list;
  // TANE's is two consecutive levels of stripped partitions.
  std::printf("\n-- Peak working set in MB (Dep-Miner couple list vs TANE "
              "partitions) --\n");
  std::printf("%-8s %-12s", "|r|", "algorithm");
  for (int64_t attrs : config.attributes) {
    std::printf(" |R|=%-8lld", static_cast<long long>(attrs));
  }
  std::printf("\n");
  for (size_t row = 0; row < config.tuples.size(); ++row) {
    const char* names[2] = {"Dep-Miner", "TANE"};
    for (int algo = 0; algo < 2; ++algo) {
      std::printf("%-8lld %-12s",
                  static_cast<long long>(config.tuples[row]), names[algo]);
      for (size_t col = 0; col < config.attributes.size(); ++col) {
        const CellResult& cell = grid[row][col];
        const size_t bytes =
            algo == 0 ? cell.depminer_bytes : cell.tane_bytes;
        std::printf(" %-12.1f",
                    static_cast<double>(bytes) / (1024.0 * 1024.0));
      }
      std::printf("\n");
    }
  }
}

void PrintFigureSeries(const TableConfig& config,
                       const std::vector<std::vector<CellResult>>& grid) {
  // Times vs |r|, one series per (algorithm, |R|) — the data behind the
  // paper's execution-time figures.
  std::printf("\n-- Figure series: time_seconds(algorithm, |R|) vs |r| --\n");
  std::printf("attrs,algorithm,tuples,seconds\n");
  const char* names[3] = {"depminer", "depminer2", "tane"};
  for (size_t col = 0; col < config.attributes.size(); ++col) {
    for (int algo = 0; algo < 3; ++algo) {
      for (size_t row = 0; row < config.tuples.size(); ++row) {
        const CellResult& cell = grid[row][col];
        const double t = algo == 0   ? cell.depminer_seconds
                         : algo == 1 ? cell.depminer2_seconds
                                     : cell.tane_seconds;
        std::printf("%lld,%s,%lld,%s\n",
                    static_cast<long long>(config.attributes[col]),
                    names[algo], static_cast<long long>(config.tuples[row]),
                    TimeCell(t).c_str());
      }
    }
  }
  // Armstrong size vs |r|, one series per |R| — the size figures.
  std::printf("\n-- Figure series: armstrong_tuples(|R|) vs |r| --\n");
  std::printf("attrs,tuples,armstrong_tuples\n");
  for (size_t col = 0; col < config.attributes.size(); ++col) {
    for (size_t row = 0; row < config.tuples.size(); ++row) {
      std::printf("%lld,%lld,%zu\n",
                  static_cast<long long>(config.attributes[col]),
                  static_cast<long long>(config.tuples[row]),
                  grid[row][col].armstrong_size);
    }
  }
}

}  // namespace

TableConfig ParseTableArgs(int argc, const char* const* argv,
                           std::string title, double identical_rate) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  TableConfig config;
  config.title = std::move(title);
  config.identical_rate = identical_rate;
  if (parser.GetBool("full", false)) {
    // The paper's original grid. Two-hour cutoff like the paper's.
    config.attributes = {10, 20, 30, 40, 50, 60};
    config.tuples = {10000, 20000, 30000, 50000, 100000};
    config.timeout_seconds = 7200;
  } else {
    config.attributes = {10, 20, 30, 40};
    config.tuples = {1000, 2500, 5000, 10000};
    config.timeout_seconds = 120;
  }
  config.attributes = parser.GetIntList("attrs", config.attributes);
  config.tuples = parser.GetIntList("tuples", config.tuples);
  config.seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  config.fixed_domain = static_cast<size_t>(parser.GetInt("domain", 0));
  config.zipf_exponent = parser.GetDouble("zipf", 0.0);
  config.timeout_seconds =
      parser.GetDouble("timeout", config.timeout_seconds);
  config.figure_mode = parser.GetBool("figure", false);
  config.verify = !parser.GetBool("no-verify", false);
  return config;
}

int RunTable(const TableConfig& config) {
  std::printf("== %s ==\n", config.title.c_str());
  if (config.fixed_domain != 0) {
    std::printf("fixed domain = %zu values/attribute, seed = %llu\n",
                config.fixed_domain,
                static_cast<unsigned long long>(config.seed));
  } else {
    std::printf("correlation c = %.0f%%, seed = %llu\n",
                config.identical_rate * 100,
                static_cast<unsigned long long>(config.seed));
  }

  std::vector<std::vector<CellResult>> grid(
      config.tuples.size(),
      std::vector<CellResult>(config.attributes.size()));
  bool all_agree = true;
  for (size_t row = 0; row < config.tuples.size(); ++row) {
    for (size_t col = 0; col < config.attributes.size(); ++col) {
      grid[row][col] =
          RunCell(config, static_cast<size_t>(config.attributes[col]),
                  static_cast<size_t>(config.tuples[row]));
      if (!grid[row][col].fds_agree) {
        all_agree = false;
        std::fprintf(stderr,
                     "FD mismatch between algorithms at |R|=%lld |r|=%lld\n",
                     static_cast<long long>(config.attributes[col]),
                     static_cast<long long>(config.tuples[row]));
      }
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");

  PrintTimeTable(config, grid);
  PrintArmstrongTable(config, grid);
  PrintMemoryTable(config, grid);
  if (config.figure_mode) PrintFigureSeries(config, grid);
  if (config.verify) {
    std::printf("\nFD agreement across the three algorithms: %s\n",
                all_agree ? "OK" : "MISMATCH");
  }
  return all_agree ? 0 : 1;
}

}  // namespace depminer::bench
