// Ablation: the paper's levelwise minimal-transversal computation
// (Algorithm 5) against Berge's classical incremental method, on the real
// cmax hypergraphs produced by mining synthetic relations of growing
// width. Also verifies both produce identical families.
//
// Flags: --attrs=10,15,20,25 --tuples=N --rate=PERCENT --seed=N

#include <algorithm>
#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "hypergraph/berge_transversals.h"
#include "hypergraph/levelwise_transversals.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const std::vector<int64_t> attr_axis =
      parser.GetIntList("attrs", {10, 15, 20, 25, 30});
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 2000));
  const double rate = parser.GetDouble("rate", 50.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));

  std::printf("== Ablation: levelwise (Alg. 5) vs Berge transversals ==\n");
  std::printf("(|r|=%zu, c=%.0f%%; times summed over all attributes)\n",
              tuples, rate * 100);
  std::printf("%-8s %-12s %-10s %-10s %-12s\n", "|R|", "levelwise_s",
              "berge_s", "edges", "transversals");

  for (int64_t attrs : attr_axis) {
    SyntheticConfig config;
    config.num_attributes = static_cast<size_t>(attrs);
    config.num_tuples = tuples;
    config.identical_rate = rate;
    config.seed = seed;
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
      return 1;
    }
    const MaxSetResult max = ComputeMaxSets(ComputeAgreeSetsIdentifiers(
        StrippedPartitionDatabase::FromRelation(data.value())));

    size_t edges = 0, transversals = 0;
    double levelwise_seconds = 0, berge_seconds = 0;
    bool agree = true;
    for (AttributeId a = 0; a < max.num_attributes; ++a) {
      const Hypergraph h(max.num_attributes, max.cmax_sets[a]);
      edges += h.edges().size();

      Stopwatch timer;
      std::vector<AttributeSet> lw = LevelwiseMinimalTransversals(h);
      levelwise_seconds += timer.ElapsedSeconds();
      transversals += lw.size();

      timer.Restart();
      std::vector<AttributeSet> berge = BergeMinimalTransversals(h);
      berge_seconds += timer.ElapsedSeconds();

      SortSets(&lw);
      SortSets(&berge);
      if (lw != berge) agree = false;
    }
    if (!agree) {
      std::fprintf(stderr, "MISMATCH at |R|=%lld\n",
                   static_cast<long long>(attrs));
      return 1;
    }
    std::printf("%-8lld %-12.3f %-10.3f %-10zu %-12zu\n",
                static_cast<long long>(attrs), levelwise_seconds,
                berge_seconds, edges, transversals);
  }
  return 0;
}
