// Ablation: the subset-dominance kernel against the quadratic scans it
// replaced.
//
// Two measurements. First, Max⊆/Min⊆ in isolation on random families of
// growing size — the inverted posting-list index (common/dominance.h)
// versus the retained O(|S|²) survivor scan, same survivors either way.
// Second, the full CMAX_SET stage (core/max_sets.h): the single-pass
// shared-index kernel versus the pre-kernel per-attribute loop
// (`ComputeMaxSetsNaive`), on every bundled dataset in data/ plus one
// synthetic relation. The bundled datasets are tiny, so each is mined in
// an iteration loop and per-iteration times are reported; the synthetic
// row provides a family large enough for the index to matter.
//
// Flags: --sizes=64,256,1024,4096  random-family sizes for part one
//        --attrs=N                 attribute count for random families
//        --density=PERCENT         attribute membership probability
//        --reps=N                  timed repetitions per family size;
//                                  the *median* is reported (single runs
//                                  at the µs scale are noise)
//        --iters=N                 CMAX repetitions per bundled dataset
//        --seed=N
//        --json=PATH               machine-readable results
//        (scripts/bench_cmax.sh writes BENCH_cmax_dominance.json)

#include <cstdio>
#include <string>
#include <vector>

#include "common/arg_parser.h"
#include "common/attribute_set.h"
#include "common/dominance.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "datagen/synthetic.h"
#include "relation/csv.h"
#include "report/json_writer.h"

using namespace depminer;

namespace {

std::vector<AttributeSet> RandomFamily(size_t size, size_t attrs,
                                       uint64_t density_pct, Rng* rng) {
  std::vector<AttributeSet> family;
  family.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    AttributeSet s;
    for (AttributeId a = 0; a < attrs; ++a) {
      if (rng->Below(100) < density_pct) s.Add(a);
    }
    family.push_back(s);
  }
  return family;
}

std::vector<AttributeSet> Canonical(std::vector<AttributeSet> sets) {
  SortSets(&sets);
  return sets;
}

/// One Max⊆/Min⊆ measurement row.
struct FamilyRow {
  size_t size = 0;
  double max_kernel_s = 0;
  double max_naive_s = 0;
  double min_kernel_s = 0;
  double min_naive_s = 0;
};

/// One CMAX_SET measurement row.
struct DatasetRow {
  std::string name;
  size_t tuples = 0;
  size_t attrs = 0;
  size_t agree_sets = 0;
  size_t iters = 0;
  double cmax_kernel_s = 0;  // per iteration
  double cmax_naive_s = 0;   // per iteration
};

double Speedup(double naive_s, double kernel_s) {
  return kernel_s > 0 ? naive_s / kernel_s : 0.0;
}

/// Median of `reps` timed runs of `fn` (each run re-filters the family
/// from scratch). A warm-up run precedes the timed ones so the first
/// measurement does not pay cold caches and lazy allocation.
template <typename Fn>
double MedianSeconds(size_t reps, Fn&& fn) {
  fn();  // warm-up, untimed
  std::vector<double> samples;
  samples.reserve(reps);
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times kernel vs naive CMAX on one agree-set result, `iters` times
/// each, and cross-checks the outputs. Returns false on mismatch.
bool MeasureCmax(const AgreeSetResult& agree, size_t iters, DatasetRow* row) {
  row->attrs = agree.num_attributes;
  row->agree_sets = agree.sets.size();
  row->iters = iters;

  Stopwatch timer;
  MaxSetResult kernel;
  for (size_t i = 0; i < iters; ++i) kernel = ComputeMaxSets(agree);
  row->cmax_kernel_s = timer.ElapsedSeconds() / static_cast<double>(iters);

  timer.Restart();
  MaxSetResult naive;
  for (size_t i = 0; i < iters; ++i) naive = ComputeMaxSetsNaive(agree);
  row->cmax_naive_s = timer.ElapsedSeconds() / static_cast<double>(iters);

  return kernel.max_sets == naive.max_sets &&
         kernel.cmax_sets == naive.cmax_sets;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const std::vector<int64_t> sizes =
      parser.GetIntList("sizes", {64, 256, 1024, 4096});
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 40));
  const uint64_t density =
      static_cast<uint64_t>(parser.GetInt("density", 50));
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(parser.GetInt("reps", 15)));
  const size_t iters = static_cast<size_t>(parser.GetInt("iters", 2000));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const std::string json_path = parser.GetString("json", "");

  // Part one: Max⊆/Min⊆ on random families of growing size. The kernel
  // dispatch (batched survivor scan below the index cutoff, posting
  // index above — see common/dominance.cc) vs the plain quadratic scan;
  // medians of `reps` runs so the small families are not pure noise.
  std::printf("== Ablation: Max⊆/Min⊆ kernel vs naive (|R|=%zu, d=%llu%%, "
              "backend=%s, median of %zu) ==\n",
              attrs, static_cast<unsigned long long>(density),
              ToString(ActiveDominanceBackend()), reps);
  std::printf("%-8s %-14s %-12s %-14s %-12s %-12s\n", "sets",
              "max_kernel_s", "max_naive_s", "min_kernel_s", "min_naive_s",
              "max_speedup");

  Rng rng(seed);
  std::vector<FamilyRow> family_rows;
  for (int64_t size : sizes) {
    FamilyRow row;
    row.size = static_cast<size_t>(size);
    const std::vector<AttributeSet> family =
        RandomFamily(row.size, attrs, density, &rng);

    row.max_kernel_s = MedianSeconds(reps, [&] { MaximalSets(family); });
    row.max_naive_s = MedianSeconds(reps, [&] { MaximalSetsNaive(family); });
    row.min_kernel_s = MedianSeconds(reps, [&] { MinimalSets(family); });
    row.min_naive_s = MedianSeconds(reps, [&] { MinimalSetsNaive(family); });

    if (Canonical(MaximalSets(family)) != Canonical(MaximalSetsNaive(family)) ||
        Canonical(MinimalSets(family)) != Canonical(MinimalSetsNaive(family))) {
      std::fprintf(stderr, "MISMATCH at %zu sets\n", row.size);
      return 1;
    }
    std::printf("%-8zu %-14.4f %-12.4f %-14.4f %-12.4f %-12.2f\n", row.size,
                row.max_kernel_s, row.max_naive_s, row.min_kernel_s,
                row.min_naive_s, Speedup(row.max_naive_s, row.max_kernel_s));
    family_rows.push_back(row);
  }

  // Part two: the CMAX_SET stage on the bundled datasets plus one
  // synthetic relation. The largest bundled dataset (most cells) is the
  // acceptance anchor recorded at the top level of the JSON.
  std::printf("\n== Ablation: CMAX_SET kernel vs naive ==\n");
  std::printf("%-26s %-8s %-7s %-11s %-15s %-14s %-10s\n", "dataset",
              "tuples", "attrs", "agree_sets", "cmax_kernel_s",
              "cmax_naive_s", "speedup");

  std::vector<DatasetRow> dataset_rows;
  std::string largest_name;
  size_t largest_cells = 0;
  const char* kDatasets[] = {"courses.csv", "customers.csv",
                             "employees.csv", "orders.csv"};
  for (const char* name : kDatasets) {
    const std::string path = std::string(DEPMINER_BENCH_DATA_DIR "/") + name;
    Result<Relation> data = ReadCsvRelation(path);
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();
    DatasetRow row;
    row.name = name;
    row.tuples = r.num_tuples();
    const AgreeSetResult agree = ComputeAgreeSetsIdentifiers(
        StrippedPartitionDatabase::FromRelation(r));
    if (!MeasureCmax(agree, iters, &row)) {
      std::fprintf(stderr, "MISMATCH on %s\n", name);
      return 1;
    }
    if (row.tuples * row.attrs > largest_cells) {
      largest_cells = row.tuples * row.attrs;
      largest_name = name;
    }
    std::printf("%-26s %-8zu %-7zu %-11zu %-15.6f %-14.6f %-10.2f\n",
                row.name.c_str(), row.tuples, row.attrs, row.agree_sets,
                row.cmax_kernel_s, row.cmax_naive_s,
                Speedup(row.cmax_naive_s, row.cmax_kernel_s));
    dataset_rows.push_back(row);
  }

  {
    SyntheticConfig config;
    config.num_attributes = 30;
    config.num_tuples = 3000;
    config.identical_rate = 0.5;
    config.seed = seed;
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();
    DatasetRow row;
    row.name = "synthetic-30x3000-c50";
    row.tuples = r.num_tuples();
    const AgreeSetResult agree = ComputeAgreeSetsIdentifiers(
        StrippedPartitionDatabase::FromRelation(r, DefaultThreadCount()));
    // The synthetic family is thousands of sets; a handful of
    // repetitions is enough.
    if (!MeasureCmax(agree, std::min<size_t>(iters, 5), &row)) {
      std::fprintf(stderr, "MISMATCH on %s\n", row.name.c_str());
      return 1;
    }
    std::printf("%-26s %-8zu %-7zu %-11zu %-15.6f %-14.6f %-10.2f\n",
                row.name.c_str(), row.tuples, row.attrs, row.agree_sets,
                row.cmax_kernel_s, row.cmax_naive_s,
                Speedup(row.cmax_naive_s, row.cmax_kernel_s));
    dataset_rows.push_back(row);
  }

  if (!json_path.empty()) {
    JsonWriter json;
    json.OpenObject();
    json.Key("bench").Value("cmax_dominance");
    json.Key("attrs").Value(static_cast<uint64_t>(attrs));
    json.Key("density_pct").Value(static_cast<uint64_t>(density));
    json.Key("seed").Value(static_cast<uint64_t>(seed));
    json.Key("hardware_threads")
        .Value(static_cast<uint64_t>(DefaultThreadCount()));
    json.Key("backend").Value(ToString(ActiveDominanceBackend()));
    json.Key("reps").Value(static_cast<uint64_t>(reps));
    json.Key("families").OpenArray();
    for (const FamilyRow& row : family_rows) {
      json.OpenObject();
      json.Key("sets").Value(static_cast<uint64_t>(row.size));
      json.Key("max_kernel_s").Value(row.max_kernel_s);
      json.Key("max_naive_s").Value(row.max_naive_s);
      json.Key("min_kernel_s").Value(row.min_kernel_s);
      json.Key("min_naive_s").Value(row.min_naive_s);
      json.Key("max_speedup")
          .Value(Speedup(row.max_naive_s, row.max_kernel_s));
      json.Key("min_speedup")
          .Value(Speedup(row.min_naive_s, row.min_kernel_s));
      json.Key("identical").Value(true);
      json.CloseObject();
    }
    json.CloseArray();
    json.Key("datasets").OpenArray();
    double largest_speedup = 0;
    for (const DatasetRow& row : dataset_rows) {
      json.OpenObject();
      json.Key("name").Value(row.name);
      json.Key("tuples").Value(static_cast<uint64_t>(row.tuples));
      json.Key("attrs").Value(static_cast<uint64_t>(row.attrs));
      json.Key("agree_sets").Value(static_cast<uint64_t>(row.agree_sets));
      json.Key("iters").Value(static_cast<uint64_t>(row.iters));
      json.Key("cmax_kernel_s").Value(row.cmax_kernel_s);
      json.Key("cmax_naive_s").Value(row.cmax_naive_s);
      json.Key("cmax_speedup")
          .Value(Speedup(row.cmax_naive_s, row.cmax_kernel_s));
      json.Key("identical").Value(true);
      json.CloseObject();
      if (row.name == largest_name) {
        largest_speedup = Speedup(row.cmax_naive_s, row.cmax_kernel_s);
      }
    }
    json.CloseArray();
    json.Key("largest_dataset").Value(largest_name);
    json.Key("largest_dataset_cmax_speedup").Value(largest_speedup);
    json.CloseObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
