// Reproduces Table 3 of the paper (and the data behind Figures 2 and 3):
// execution times of Dep-Miner / Dep-Miner 2 / TANE and sizes of
// real-world Armstrong relations on synthetic data *without constraints*
// (correlation parameter c = 0: each cell drawn from |r| candidate
// values).
//
// Default grid is scaled down to finish in minutes; pass --full for the
// paper's 10..60 attributes × 10k..100k tuples grid, or override with
// --attrs=... --tuples=... --timeout=... --figure.

#include "table_harness.h"

int main(int argc, char** argv) {
  depminer::bench::TableConfig config = depminer::bench::ParseTableArgs(
      argc, argv, "Table 3 / Figures 2-3: data without constraints (c=0)",
      /*identical_rate=*/0.0);
  return depminer::bench::RunTable(config);
}
