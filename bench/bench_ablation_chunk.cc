// Ablation: sensitivity of Algorithm 2 to the couple-chunk memory
// threshold (paper §3.1: "computing agree sets as soon as a fixed number
// of couples was generated" — bounded memory at the cost of re-scanning
// the stripped partitions once per chunk).
//
// Flags: --attrs=N --tuples=N --rate=PERCENT --seed=N
//        --chunks=0,100000,10000,1000 (0 = unlimited)

#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "core/agree_sets.h"
#include "datagen/synthetic.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 15));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 5000));
  const double rate = parser.GetDouble("rate", 40.0) / 100.0;
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));
  const std::vector<int64_t> chunks =
      parser.GetIntList("chunks", {0, 1000000, 100000, 10000, 1000});

  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = seed;
  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(data.value());

  std::printf(
      "== Ablation: couple chunk threshold (|R|=%zu, |r|=%zu, c=%.0f%%) ==\n",
      attrs, tuples, rate * 100);
  std::printf("%-12s %-10s %-10s %-12s\n", "chunk_size", "seconds", "chunks",
              "couples");

  std::vector<AttributeSet> reference;
  for (int64_t chunk : chunks) {
    AgreeSetOptions options;
    options.max_couples_per_chunk = static_cast<size_t>(chunk);
    Stopwatch timer;
    const AgreeSetResult result = ComputeAgreeSetsCouples(db, options);
    const double seconds = timer.ElapsedSeconds();
    if (reference.empty()) {
      reference = result.sets;
    } else if (result.sets != reference) {
      std::fprintf(stderr, "MISMATCH at chunk=%lld\n",
                   static_cast<long long>(chunk));
      return 1;
    }
    std::printf("%-12lld %-10.3f %-10zu %-12zu\n",
                static_cast<long long>(chunk), seconds,
                result.chunks_processed, result.couples_examined);
  }
  return 0;
}
