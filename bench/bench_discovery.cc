// Five-way comparison of the FD discovery algorithms in this library:
// Dep-Miner (Algorithm 2 route), Dep-Miner 2 (Algorithm 3 route), the
// TANE baseline of the paper's evaluation, FastFDs (follow-up baseline)
// and FDEP ([SF93], pre-paper baseline with its characteristic O(n·p²)
// pairwise negative-cover step). All five must return the identical
// minimal cover; the bench sweeps the correlation parameter c and
// reports times.
//
// Flags: --attrs=N --tuples=N --rates=0,10,30,50,70 --seed=N

#include <cstdio>

#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "core/dep_miner.h"
#include "datagen/synthetic.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "tane/tane.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser parser;
  (void)parser.Parse(argc, argv);
  const size_t attrs = static_cast<size_t>(parser.GetInt("attrs", 20));
  const size_t tuples = static_cast<size_t>(parser.GetInt("tuples", 5000));
  const std::vector<int64_t> rates =
      parser.GetIntList("rates", {0, 10, 30, 50, 70});
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed", 42));

  std::printf("== Discovery algorithms (|R|=%zu, |r|=%zu) ==\n", attrs,
              tuples);
  std::printf("%-8s %-12s %-12s %-10s %-10s %-10s %-10s\n", "c(%)",
              "depminer_s", "depminer2_s", "tane_s", "fastfds_s", "fdep_s",
              "fds");

  for (int64_t rate : rates) {
    SyntheticConfig config;
    config.num_attributes = attrs;
    config.num_tuples = tuples;
    config.identical_rate = static_cast<double>(rate) / 100.0;
    config.seed = seed;
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
      return 1;
    }
    const Relation& r = data.value();

    DepMinerOptions couples;
    couples.agree_set_algorithm = AgreeSetAlgorithm::kCouples;
    couples.build_armstrong = false;
    Stopwatch timer;
    Result<DepMinerResult> dm = MineDependencies(r, couples);
    const double dm_seconds = timer.ElapsedSeconds();

    DepMinerOptions ids;
    ids.agree_set_algorithm = AgreeSetAlgorithm::kIdentifiers;
    ids.build_armstrong = false;
    timer.Restart();
    Result<DepMinerResult> dm2 = MineDependencies(r, ids);
    const double dm2_seconds = timer.ElapsedSeconds();

    timer.Restart();
    Result<TaneResult> tane = TaneDiscover(r);
    const double tane_seconds = timer.ElapsedSeconds();

    timer.Restart();
    Result<FastFdsResult> fast = FastFdsDiscover(r);
    const double fast_seconds = timer.ElapsedSeconds();

    timer.Restart();
    Result<FdepResult> fdep = FdepDiscover(r);
    const double fdep_seconds = timer.ElapsedSeconds();

    if (!dm.ok() || !dm2.ok() || !tane.ok() || !fast.ok() || !fdep.ok()) {
      std::fprintf(stderr, "algorithm failure at c=%lld\n",
                   static_cast<long long>(rate));
      return 1;
    }
    if (dm.value().fds.fds() != dm2.value().fds.fds() ||
        dm.value().fds.fds() != tane.value().fds.fds() ||
        dm.value().fds.fds() != fast.value().fds.fds() ||
        dm.value().fds.fds() != fdep.value().fds.fds()) {
      std::fprintf(stderr, "FD MISMATCH at c=%lld\n",
                   static_cast<long long>(rate));
      return 1;
    }

    std::printf("%-8lld %-12.3f %-12.3f %-10.3f %-10.3f %-10.3f %-10zu\n",
                static_cast<long long>(rate), dm_seconds, dm2_seconds,
                tane_seconds, fast_seconds, fdep_seconds,
                dm.value().fds.size());
  }
  return 0;
}
