// Reproduces Table 5 of the paper (and the data behind Figures 6 and 7):
// execution times and Armstrong sizes on correlated data with c = 50%
// (each cell drawn from 0.5·|r| candidate values).

#include "table_harness.h"

int main(int argc, char** argv) {
  depminer::bench::TableConfig config = depminer::bench::ParseTableArgs(
      argc, argv, "Table 5 / Figures 6-7: correlated data (c=50%)",
      /*identical_rate=*/0.50);
  return depminer::bench::RunTable(config);
}
