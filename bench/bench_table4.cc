// Reproduces Table 4 of the paper (and the data behind Figures 4 and 5):
// execution times and Armstrong sizes on correlated data with c = 30%
// (each cell drawn from 0.3·|r| candidate values).

#include "table_harness.h"

int main(int argc, char** argv) {
  depminer::bench::TableConfig config = depminer::bench::ParseTableArgs(
      argc, argv, "Table 4 / Figures 4-5: correlated data (c=30%)",
      /*identical_rate=*/0.30);
  return depminer::bench::RunTable(config);
}
